"""Code-level inverted pattern index for out-of-core discovery.

The row-level :class:`~repro.dataset.index.PatternIndex` materializes one
row-id list per ``(part, position)`` key plus a per-row key list — O(rows ×
parts) boxed ints, which is exactly the memory the ``sql`` backend exists to
avoid.  Parts are a function of the cell *value* alone, and on a
single-attribute LHS (the default lattice) every discovery decision —
frequency ordering, fresh-row claiming, dominance counting, positional
grouping — happens at whole-code granularity.  So this index stores, per
key, the list of *dictionary codes* carrying the part and the key's total
row weight from the per-code counts; memory is O(distinct × parts),
independent of the row count.

The discoverer pairs it with a code-level constant-row collector
(:meth:`PFDDiscoverer._collect_constant_rows_codes`), whose only per-row
work — counting the RHS codes co-occurring with an LHS code group — is
pushed into SQLite as one ``GROUP BY`` (max-frequency) query.  Substring
pruning reuses the row-level routine verbatim: two keys share a row set iff
they share a code set, so the dominated-entry signatures coincide.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..dataset.index import PartKey, _prune_dominated_entries
from ..dataset.profiler import TableProfile, profile_relation
from ..dataset.relation import Relation
from ..dataset.tokenizer import extract_parts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine ← dataset)
    from ..engine.evaluator import ColumnMatchSet, PatternEvaluator


@dataclasses.dataclass
class CodeAttributeIndex:
    """Inverted lists of one attribute at dictionary-code granularity.

    ``entries`` maps ``(text, position)`` to the codes whose value carries
    that part (ascending, i.e. first-seen order); ``code_parts`` maps a code
    to its keys; ``weights`` holds each key's total row count — identical to
    ``len(ids)`` of the row-level index, so every support threshold and
    frequency ordering carries over unchanged.
    """

    attribute: str
    strategy: str
    entries: dict[PartKey, list[int]]
    code_parts: dict[int, list[PartKey]]
    weights: dict[PartKey, int]

    def codes(self, key: PartKey) -> list[int]:
        return self.entries.get(key, [])

    def weight(self, key: PartKey) -> int:
        return self.weights.get(key, 0)

    def frequent_keys(self, minimum_support: int) -> list[PartKey]:
        """Same ordering contract as the row-level index: descending row
        weight, then longer text, then (text, position)."""
        keys = [key for key, weight in self.weights.items() if weight >= minimum_support]
        keys.sort(key=lambda key: (-self.weights[key], -len(key[0]), key[0], key[1]))
        return keys

    def keys_for_code_counts(self, code_counts: Mapping[int, int]) -> dict[PartKey, int]:
        """Histogram of part keys over a group given as code → row count
        (== the row-level ``keys_for_rows`` over the group's rows)."""
        histogram: dict[PartKey, int] = defaultdict(int)
        for code, count in code_counts.items():
            for key in self.code_parts.get(code, ()):
                histogram[key] += count
        return dict(histogram)

    @property
    def entry_count(self) -> int:
        return len(self.entries)


class CodePatternIndex:
    """A :class:`PatternIndex` drop-in operating on codes instead of rows."""

    def __init__(
        self,
        relation: Relation,
        profile: Optional[TableProfile] = None,
        prune_substrings: bool = True,
        prefixes_only: bool = True,
        evaluator: Optional["PatternEvaluator"] = None,
    ):
        self.relation = relation
        self.profile = profile or profile_relation(relation)
        self.prune_substrings = prune_substrings
        self.prefixes_only = prefixes_only
        self._evaluator = evaluator
        self._attributes: dict[str, CodeAttributeIndex] = {}
        for column in self.profile.usable_columns:
            self._attributes[column] = self._build_attribute(column)

    def _build_attribute(self, attribute: str) -> CodeAttributeIndex:
        strategy = self.profile.strategy(attribute)
        dictionary = self.relation.dictionary(attribute)
        max_gram = self.profile.column(attribute).max_length
        counts = dictionary.counts()
        entries: dict[PartKey, list[int]] = defaultdict(list)
        code_parts: dict[int, list[PartKey]] = {}
        for code, value in enumerate(dictionary.values):
            if not value or not counts[code]:
                continue
            parts = extract_parts(
                value,
                strategy,
                max_gram_length=max_gram,
                prefixes_only=self.prefixes_only,
            )
            seen_keys: set[PartKey] = set()
            keys: list[PartKey] = []
            for part in parts:
                key = (part.text, part.position)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                keys.append(key)
            if not keys:
                continue
            code_parts[code] = keys
            for key in keys:
                entries[key].append(code)
        if self.prune_substrings:
            entries, code_parts = _prune_dominated_entries(entries, code_parts)
        weights = {
            key: sum(counts[code] for code in codes)
            for key, codes in entries.items()
        }
        return CodeAttributeIndex(
            attribute=attribute,
            strategy=strategy,
            entries=dict(entries),
            code_parts=dict(code_parts),
            weights=weights,
        )

    # -- PatternIndex-compatible surface --------------------------------------

    def attribute_index(self, attribute: str) -> CodeAttributeIndex:
        return self._attributes[attribute]

    @property
    def attributes(self) -> list[str]:
        return list(self._attributes)

    def strategy(self, attribute: str) -> str:
        return self._attributes[attribute].strategy

    def frequent_keys(self, attribute: str, minimum_support: int) -> list[PartKey]:
        return self._attributes[attribute].frequent_keys(minimum_support)

    @property
    def evaluator(self) -> "PatternEvaluator":
        if self._evaluator is None:
            from ..engine.evaluator import PatternEvaluator

            self._evaluator = PatternEvaluator()
        return self._evaluator

    def match_patterns(self, attribute: str, patterns: Sequence) -> "ColumnMatchSet":
        return self.evaluator.match_column_many(
            patterns, self.relation.dictionary(attribute)
        )

    def total_entries(self) -> int:
        return sum(index.entry_count for index in self._attributes.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CodePatternIndex(relation={self.relation.name!r}, "
            f"attributes={len(self._attributes)}, entries={self.total_entries()})"
        )
