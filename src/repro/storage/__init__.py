"""Out-of-core SQLite-pushdown backing store (the ``sql`` engine backend).

Layout:

``store``
    :class:`SqlStore` — the dictionary-encoded rows in a private temporary
    SQLite database, plus the in-process encode state.
``relation``
    :class:`SqlRelation` / :class:`SqlDictionaryColumn` — drop-in relation
    and dictionary wrappers over a store.
``partitions``
    :class:`SqlPartitionManager` / :class:`SqlStrippedPartition` — partition
    manager whose group-heavy primitives run as SQL ``GROUP BY`` aggregates.
``discovery``
    :class:`CodePatternIndex` — the inverted pattern index at dictionary-code
    granularity used by single-LHS discovery on sql relations.
"""

from .discovery import CodeAttributeIndex, CodePatternIndex
from .partitions import SqlPartitionManager, SqlPatternState, SqlStrippedPartition
from .relation import SqlDictionaryColumn, SqlRelation
from .store import SqlStore

__all__ = [
    "CodeAttributeIndex",
    "CodePatternIndex",
    "SqlDictionaryColumn",
    "SqlPartitionManager",
    "SqlPatternState",
    "SqlRelation",
    "SqlStore",
    "SqlStrippedPartition",
]
