"""Out-of-core relation and dictionary wrappers over :class:`SqlStore`.

:class:`SqlRelation` is a drop-in :class:`~repro.dataset.relation.Relation`
whose per-row state lives in a temporary SQLite database instead of decoded
Python column lists.  The public surface — accessors, ``append_rows`` with
delta maintenance, ``set_cell``, derivation — is identical; only the memory
profile changes: peak usage is bounded by the ingestion chunk size plus the
per-attribute distinct values, never by the row count.

:class:`SqlDictionaryColumn` fronts one attribute's encode state for the
engine.  The distinct values, value → code map, and per-code counts are the
store's live structures (always in memory, always small); the per-row code
vector is fetched from SQLite only when a consumer genuinely needs a full
scan, and arrives as a compact ``array('i')`` (4 bytes/row) rather than a
list of boxed ints.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Mapping, Optional, Sequence, Union

from ..dataset.relation import Relation
from ..dataset.schema import Schema
from ..engine.backend import SQL, resolve_backend
from ..engine.dictionary import DictionaryColumn, DictionaryDelta, DictionaryUpdate
from ..exceptions import SchemaError
from .store import BATCH_ROWS, SqlStore


class SqlDictionaryColumn(DictionaryColumn):
    """A :class:`DictionaryColumn` view over one attribute of a store."""

    __slots__ = ("_store", "_col_index")

    def __init__(self, store: SqlStore, attribute: str):
        # Deliberately bypasses the base constructor: the encode state is
        # *shared live* with the store (updated by store appends), and the
        # code vector stays in SQLite until someone scans it.
        self.attribute = attribute
        self.backend = SQL
        self.values = tuple(store.values[attribute])
        self._codes = None
        self._length = store.row_count
        self._code_of = store.code_of[attribute]
        self._rows_by_code = None
        self._counts = store.counts[attribute]
        self._counts_array = None
        self.has_updates = store.has_updates
        self._store = store
        self._col_index = store.column_index(attribute)

    @property
    def codes(self):
        """The per-row code vector, fetched from SQLite on first use."""
        if self._codes is None:
            self._codes = self._store.codes_for(self._col_index)
        return self._codes

    def value_of_row(self, row_id: int) -> str:
        if self._codes is None:
            return self.values[self._store.code_at(row_id, self._col_index)]
        return self.values[self._codes[row_id]]

    def rows_by_code(self) -> list[list[int]]:
        if self._rows_by_code is None:
            self.codes  # materialize before the base python-path scan
        return super().rows_by_code()

    def broadcast_codes(self, accepted: Sequence[bool]) -> list[int]:
        self.codes
        return super().broadcast_codes(accepted)

    def extend(self, cells) -> DictionaryDelta:
        raise RuntimeError(
            "SqlDictionaryColumn is extended through SqlRelation.append_rows, "
            "not directly"
        )

    def update_rows(self, assignments) -> DictionaryUpdate:
        raise RuntimeError(
            "SqlDictionaryColumn is updated through SqlRelation.apply, not directly"
        )

    def _apply_delta(self, delta: DictionaryDelta) -> None:
        """Mirror a store append into this wrapper (same patching contract
        as :meth:`DictionaryColumn.extend`)."""
        store_values = self._store.values[self.attribute]
        if len(store_values) > len(self.values):
            self.values = self.values + tuple(store_values[len(self.values) :])
        if self._codes is not None:
            self._codes.extend(delta.appended_codes)
        self._length += len(delta.appended_codes)
        if self._rows_by_code is not None:
            self._rows_by_code.extend(
                [] for _ in range(len(self.values) - delta.old_distinct_count)
            )
            for offset, code in enumerate(delta.appended_codes):
                self._rows_by_code[code].append(delta.start_row + offset)
        self._counts_array = None

    def _apply_update(self, update: DictionaryUpdate) -> None:
        """Mirror a store update into this wrapper (same patching contract
        as :meth:`DictionaryColumn.update_rows`): the counts list is shared
        live with the store, so only the values snapshot and any
        materialized per-row structures need patching."""
        store_values = self._store.values[self.attribute]
        if len(store_values) > len(self.values):
            self.values = self.values + tuple(store_values[len(self.values) :])
        if self._codes is not None:
            for row_id, _old_code, new_code in update.assignments:
                self._codes[row_id] = new_code
        if self._rows_by_code is not None:
            while len(self._rows_by_code) < len(self.values):
                self._rows_by_code.append([])
            for row_id, old_code, new_code in update.assignments:
                old_rows = self._rows_by_code[old_code]
                del old_rows[bisect.bisect_left(old_rows, row_id)]
                bisect.insort(self._rows_by_code[new_code], row_id)
        self._counts_array = None
        if update:
            self.has_updates = True


class SqlRelation(Relation):
    """A relation backed by a temporary SQLite database.

    Constructed via ``Relation(..., backend="sql")``, ``read_csv(...,
    backend="sql")``, or ``REPRO_ENGINE=sql``; everything downstream (the
    evaluator, the partition manager, discovery, detection, repair) sees the
    ordinary relation API and produces bit-identical results.
    """

    #: Feature probe for scale-sensitive callers (``getattr(...,
    #: "is_sql_backed", False)``): discovery/detection stay serial and use
    #: code-level indexes on sql relations.
    is_sql_backed = True

    def __init__(
        self,
        schema: Schema,
        columns: Optional[Mapping[str, Sequence[str]]] = None,
        backend: Optional[str] = None,
    ):
        if backend is not None and resolve_backend(backend) != SQL:
            raise ValueError(
                f"SqlRelation is always backed by the {SQL!r} backend, got {backend!r}"
            )
        self.schema = schema
        self.backend = SQL
        self._store = SqlStore(schema.attribute_names)
        self._dictionaries = {}
        self._partitions = None
        self._version = 0
        self._deleted = set()
        if columns:
            names = schema.attribute_names
            cols = {name: columns.get(name, []) for name in names}
            lengths = {len(column) for column in cols.values()}
            if len(lengths) > 1:
                raise SchemaError(
                    f"columns of {schema.name!r} have differing lengths: "
                    f"{sorted(lengths)}"
                )
            total = lengths.pop() if lengths else 0
            for start in range(0, total, BATCH_ROWS):
                stop = min(start + BATCH_ROWS, total)
                self._store.append(
                    [[cols[name][i] for name in names] for i in range(start, stop)]
                )

    # -- store plumbing -------------------------------------------------------

    @property
    def store(self) -> SqlStore:
        return self._store

    def close(self) -> None:
        """Release the backing database (also dropped when GC'd)."""
        self._store.close()

    # -- size / access --------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._store.row_count

    def column(self, name: str) -> list[str]:
        """The full column, decoded.

        The result is a list of *pointers into the shared distinct values*
        (O(rows) pointers, not O(rows) string copies) — cheap relative to the
        decoded table, but still per-row; scale-sensitive callers should stay
        on the dictionary/partition layer instead.
        """
        self.schema.position(name)
        values = self._store.values[name]
        return [values[code] for code in self._store.codes_for(self._store.column_index(name))]

    def dictionary(self, name: str) -> SqlDictionaryColumn:
        self.schema.position(name)
        cached = self._dictionaries.get(name)
        if cached is None:
            cached = SqlDictionaryColumn(self._store, name)
            self._dictionaries[name] = cached
        return cached

    def set_backend(self, backend: Optional[str]) -> None:
        """Re-pinning ``"sql"`` (or the default) drops derived caches like the
        base class; switching an out-of-core relation to an in-memory backend
        is refused — decode explicitly via ``select_rows(range(...))``."""
        if backend and resolve_backend(backend) != SQL:
            raise ValueError(
                f"cannot re-pin an out-of-core sql relation to {backend!r}; "
                "materialize an in-memory copy instead"
            )
        self._dictionaries = {}
        if self._partitions is not None:
            self._partitions.invalidate()
            self._partitions = None

    def partitions(self):
        if self._partitions is None:
            from .partitions import SqlPartitionManager

            self._partitions = SqlPartitionManager(self)
        return self._partitions

    def cell(self, row_id: int, name: str) -> str:
        self.schema.position(name)
        return self._store.cell(row_id, name)

    def row(self, row_id: int) -> tuple[str, ...]:
        codes = self._store.row_codes(row_id)
        values = self._store.values
        return tuple(
            values[name][code] for name, code in zip(self.schema.attribute_names, codes)
        )

    def row_dict(self, row_id: int) -> dict[str, str]:
        return dict(zip(self.schema.attribute_names, self.row(row_id)))

    def iter_rows(self) -> Iterator[tuple[str, ...]]:
        names = self.schema.attribute_names
        decoders = [self._store.values[name] for name in names]
        for codes in self._store.iter_code_rows():
            yield tuple(decoder[code] for decoder, code in zip(decoders, codes))

    def iter_row_dicts(self) -> Iterator[dict[str, str]]:
        names = self.schema.attribute_names
        for row in self.iter_rows():
            yield dict(zip(names, row))

    # -- mutation -------------------------------------------------------------

    def append_rows(
        self, rows: "Union[Sequence[object], Mapping[str, object]]"
    ) -> range:
        normalized = [self._normalize_row(row) for row in rows]
        start = self.row_count
        if not normalized:
            return range(start, start)
        deltas = self._store.append(normalized)
        for name, wrapper in self._dictionaries.items():
            wrapper._apply_delta(deltas[name])
        if self._partitions is not None:
            # The store derives a delta for *every* attribute (unlike the
            # in-memory path, which only has deltas for cached dictionaries),
            # so all cached partitions can be patched instead of dropped.
            self._partitions.extend(deltas)
        self._version += 1
        return range(start, start + len(normalized))

    def _apply_assignments(self, assignments):
        """Route validated cell assignments through the store.

        The store is the single encode authority for the sql backend: it
        drops no-op assignments, pushes ``UPDATE rows SET c<i> = ?`` batches
        down to SQLite, and returns the effective
        :class:`~repro.engine.dictionary.DictionaryUpdate` per attribute.
        Cached wrappers are patched in place so evaluator masks survive;
        the inherited :meth:`Relation.apply` then re-snapshots the touched
        partition specs.
        """
        results = self._store.update_rows(assignments)
        updates = {name: update for name, update in results.items() if update}
        touched = set(updates)
        changed = {row for update in updates.values() for row in update.rows}
        for name, update in updates.items():
            wrapper = self._dictionaries.get(name)
            if wrapper is not None:
                wrapper._apply_update(update)
        return updates, touched, changed

    # -- derivation -----------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "SqlRelation":
        schema = self.schema if name is None else Schema(self.schema.attributes, name=name)
        clone = SqlRelation.__new__(SqlRelation)
        clone.schema = schema
        clone.backend = SQL
        clone._store = self._store.copy()
        clone._dictionaries = {}
        clone._partitions = None
        clone._version = 0
        clone._deleted = set(self._deleted)
        return clone

    def project(self, names: Sequence[str], name: Optional[str] = None) -> "SqlRelation":
        schema = self.schema.project(names, name=name)
        return SqlRelation(schema, {n: self.column(n) for n in names})

    def select_rows(self, row_ids: Sequence[int], name: Optional[str] = None) -> "SqlRelation":
        schema = self.schema if name is None else Schema(self.schema.attributes, name=name)
        result = SqlRelation(schema)
        batch: list[tuple[str, ...]] = []
        for row_id in row_ids:
            batch.append(self.row(row_id))
            if len(batch) >= BATCH_ROWS:
                result._store.append(batch)
                batch = []
        if batch:
            result._store.append(batch)
        return result

    # -- value summaries (served from the encode state, no row scan) ----------

    def distinct_values(self, name: str) -> list[str]:
        self.schema.position(name)
        return [
            value
            for value, count in zip(self._store.values[name], self._store.counts[name])
            if value and count
        ]

    def value_counts(self, name: str) -> dict[str, int]:
        self.schema.position(name)
        return {
            value: count
            for value, count in zip(self._store.values[name], self._store.counts[name])
            if count
        }

    def active_domain(self, name: str) -> set[str]:
        self.schema.position(name)
        return {
            value
            for value, count in zip(self._store.values[name], self._store.counts[name])
            if value and count
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SqlRelation({self.schema.name!r}, rows={self.row_count}, "
            f"columns={list(self.schema.attribute_names)})"
        )
