"""SQL-pushdown stripped partitions for the out-of-core backend.

The in-memory engine materializes every stripped partition as row-id tuples.
At out-of-core scale that is exactly the memory the ``sql`` backend exists to
avoid, so :class:`SqlStrippedPartition` keeps a partition as a *query spec*
instead — a ``FROM``/``WHERE``/group-expression triple over the store's
``rows`` table — and pushes the group-heavy work into SQLite:

* attribute partitions group by the code column with ``HAVING COUNT(*) > 1``
  (stripped semantics) and exclude the empty-value code from coverage;
* pattern-projected partitions join a ``(code, comp)`` scratch table mapping
  each *distinct* matched value to its constrained-component id (the
  :class:`~repro.engine.evaluator.PatternEvaluator` still matches once per
  distinct value — the paper's always-fits working set);
* ``class_count`` / ``stripped_row_count`` / ``covered_count`` are SQL
  aggregates over the spec, so discovery's coverage pruning and the partition
  ``error`` never materialize a single row id;
* PFD violation search runs as violating-rows / violating-groups queries
  (see :mod:`repro.core.pfd`), fetching only the rows that actually violate.

Every spec pins ``rid < max_rid`` at build time, so partitions handed out
before an append keep describing the old rows — the same snapshot contract
the in-memory delta maintenance guarantees.  Materializing ``classes`` /
``covered`` stays available as a lazy fallback (rid-ascending fetch, grouped
by first occurrence = identical class order), which is what the generic
python code paths (intersection, refinement, minority scans) run on.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..engine.backend import SQL
from ..engine.dictionary import DictionaryColumn, DictionaryDelta, DictionaryUpdate
from ..engine.partitions import (
    PartitionKey,
    PartitionManager,
    StrippedPartition,
    _PatternGroups,
    default_evaluator,
)
from .relation import SqlDictionaryColumn, SqlRelation
from .store import SqlStore


class SqlStrippedPartition(StrippedPartition):
    """A stripped partition described by a SQL spec, materialized lazily."""

    __slots__ = ("_store", "_sql_from", "_sql_where", "_sql_group", "_class_count_cache", "_covered_count_cache")

    @classmethod
    def build(
        cls,
        store: SqlStore,
        from_clause: str,
        where: str,
        group: str,
        row_count: int,
    ) -> "SqlStrippedPartition":
        partition = cls.__new__(cls)
        partition.backend = SQL
        partition.row_count = row_count
        partition._classes = None
        partition._rowids = None
        partition._offsets = None
        partition._covered = None
        partition._covered_array = None
        partition._parents = None
        partition._probe = None
        partition._probe_array = None
        partition._stripped = None
        partition._store = store
        partition._sql_from = from_clause
        partition._sql_where = where
        partition._sql_group = group
        partition._class_count_cache = None
        partition._covered_count_cache = None
        return partition

    # -- query fragments ------------------------------------------------------

    def _stripped_groups_sql(self) -> str:
        """Group keys with >= 2 covered rows — the pushed-down stripping."""
        return (
            f"SELECT {self._sql_group} AS g, COUNT(*) AS n FROM {self._sql_from} "
            f"WHERE {self._sql_where} GROUP BY g HAVING n >= 2"
        )

    def covered_select(self) -> str:
        """``SELECT rid`` over the covered rows (for COUNT/UNION pushdown)."""
        return f"SELECT r.rid AS rid FROM {self._sql_from} WHERE {self._sql_where}"

    # -- lazy materialization -------------------------------------------------

    @property
    def classes(self) -> tuple[tuple[int, ...], ...]:
        if self._classes is None:
            sql = (
                f"SELECT {self._sql_group} AS g, r.rid FROM {self._sql_from} "
                f"WHERE {self._sql_where} AND {self._sql_group} IN "
                f"(SELECT g FROM ({self._stripped_groups_sql()})) ORDER BY r.rid"
            )
            groups: dict[int, list[int]] = {}
            for group_key, rid in self._store.execute(sql):
                groups.setdefault(group_key, []).append(rid)
            # rid-ascending fetch + dict insertion order = classes ordered by
            # smallest member, rows ascending within each class — identical
            # to the in-memory build.
            self._classes = tuple(tuple(rows) for rows in groups.values())
        return self._classes

    @property
    def covered(self) -> tuple[int, ...]:
        if self._covered is None:
            self._covered = tuple(
                row[0]
                for row in self._store.execute(f"{self.covered_select()} ORDER BY r.rid")
            )
        return self._covered

    def class_arrays(self):
        self.classes
        return super().class_arrays()

    def covered_array(self):
        self.covered
        return super().covered_array()

    def probe_table(self) -> dict[int, int]:
        self.classes
        return super().probe_table()

    # -- pushed-down aggregates -----------------------------------------------

    def _fetch_counts(self) -> None:
        row = self._store.fetch_one(
            f"SELECT COUNT(*), COALESCE(SUM(n), 0) FROM ({self._stripped_groups_sql()})"
        )
        self._class_count_cache = row[0]
        if self._stripped is None:
            self._stripped = row[1]

    @property
    def class_count(self) -> int:
        if self._classes is not None:
            return len(self._classes)
        if self._class_count_cache is None:
            self._fetch_counts()
        return self._class_count_cache

    @property
    def stripped_row_count(self) -> int:
        if self._stripped is None:
            if self._classes is not None:
                self._stripped = sum(len(class_rows) for class_rows in self._classes)
            else:
                self._fetch_counts()
        return self._stripped

    @property
    def covered_count(self) -> int:
        if self._covered is not None:
            return len(self._covered)
        if self._covered_count_cache is None:
            self._covered_count_cache = self._store.fetch_value(
                f"SELECT COUNT(*) FROM {self._sql_from} WHERE {self._sql_where}"
            )
        return self._covered_count_cache

    # -- violation pushdown ---------------------------------------------------

    def constant_violation_rows(
        self,
        rhs_cols: Sequence[int],
        rhs_good_codes: Sequence[Sequence[int]],
        since_row: int,
        changed_rows: Optional[Sequence[int]] = None,
    ) -> list[tuple]:
        """Covered rows violating a constant tableau row, ascending.

        Returns ``(rid, rhs_code_0, rhs_code_1, ...)`` for the covered rows
        in scope whose code on *some* RHS attribute is outside that
        attribute's accepted set — only violating rows leave the database.
        The scope is rows at or after ``since_row``, or — when
        ``changed_rows`` is given — exactly that row-id set (the CRUD delta
        contract of :meth:`repro.core.pfd.PFD.violations`).
        """
        conditions = []
        scratch: list[str] = []
        if changed_rows is not None:
            scope_sql, tables = self._store.code_set_sql("r.rid", changed_rows)
            scratch.extend(tables)
        else:
            scope_sql = f"r.rid >= {int(since_row)}"
        for col, good in zip(rhs_cols, rhs_good_codes):
            if good:
                in_sql, tables = self._store.code_set_sql(f"r.c{col}", good)
                scratch.extend(tables)
                conditions.append(f"NOT ({in_sql})")
            else:
                conditions.append("1")  # no code carries the expected value
        columns = ", ".join(f"r.c{col}" for col in rhs_cols)
        sql = (
            f"SELECT r.rid, {columns} FROM {self._sql_from} "
            f"WHERE {self._sql_where} AND {scope_sql} "
            f"AND ({' OR '.join(conditions)}) ORDER BY r.rid"
        )
        try:
            return self._store.execute(sql).fetchall()
        finally:
            for table in scratch:
                self._store.drop_table(table)

    def variable_violation_classes(
        self,
        rhs_cols: Sequence[int],
        bucket_tables: Sequence[str],
        since_row: int,
        changed_rows: Optional[Sequence[int]] = None,
    ) -> list[tuple[int, ...]]:
        """The stripped classes that can violate a variable tableau row.

        ``bucket_tables`` map each RHS attribute's codes to RHS-bucket ids
        (matched/constrained vs literal value).  A class violates only if it
        spans >= 2 distinct buckets on some RHS attribute and touches the
        delta — rows at or after ``since_row``, or the explicit
        ``changed_rows`` id set when given — both conditions are pushed into
        one grouped query, so agreeing classes (the vast majority) never
        leave SQLite.  Returned classes are in partition order (smallest
        member first).
        """
        joins = " ".join(
            f"JOIN {table} b{i} ON b{i}.code = r.c{col}"
            for i, (col, table) in enumerate(zip(rhs_cols, bucket_tables))
        )
        disagree = " OR ".join(
            f"COUNT(DISTINCT b{i}.comp) >= 2" for i in range(len(rhs_cols))
        )
        phase1_scratch: list[str] = []
        if changed_rows is not None:
            rid_in_sql, phase1_scratch = self._store.code_set_sql("r.rid", changed_rows)
            touches = f"SUM(CASE WHEN {rid_in_sql} THEN 1 ELSE 0 END) > 0"
        else:
            touches = f"MAX(r.rid) >= {int(since_row)}"
        phase1 = (
            f"SELECT {self._sql_group} AS g FROM {self._sql_from} {joins} "
            f"WHERE {self._sql_where} GROUP BY g "
            f"HAVING COUNT(*) >= 2 AND {touches} AND ({disagree})"
        )
        try:
            group_keys = [row[0] for row in self._store.execute(phase1).fetchall()]
        finally:
            for table in phase1_scratch:
                self._store.drop_table(table)
        if not group_keys:
            return []
        in_sql, scratch = self._store.code_set_sql(self._sql_group, group_keys)
        phase2 = (
            f"SELECT {self._sql_group} AS g, r.rid FROM {self._sql_from} "
            f"WHERE {self._sql_where} AND {in_sql} ORDER BY r.rid"
        )
        try:
            groups: dict[int, list[int]] = {}
            for group_key, rid in self._store.execute(phase2):
                groups.setdefault(group_key, []).append(rid)
        finally:
            for table in scratch:
                self._store.drop_table(table)
        return [tuple(rows) for rows in groups.values()]


class SqlPatternState(_PatternGroups):
    """Pattern-partition grouping state plus its SQL scratch-table handle."""

    __slots__ = ("comp_of", "table", "col_index")

    def __init__(self) -> None:
        super().__init__()
        self.comp_of: dict[str, int] = {}
        self.table: Optional[str] = None
        self.col_index = -1


class SqlPartitionManager(PartitionManager):
    """A :class:`PartitionManager` whose leaf partitions are SQL specs.

    Cache keys, hit/miss/extend counters, intersection memoization, and the
    snapshot contract are all inherited; only the leaf builds (and their
    append-time refresh) change.  Intersections and any partition consumer
    that needs explicit row ids fall back to the lazy materialization the
    base python paths run on.
    """

    def __init__(self, relation: SqlRelation):
        super().__init__(relation)
        self._store: SqlStore = relation.store

    # -- leaf builds ----------------------------------------------------------

    def _sql_attribute_partition(self, attribute: str) -> SqlStrippedPartition:
        store = self._store
        col = store.column_index(attribute)
        max_rid = store.row_count
        where = f"r.rid < {max_rid}"
        empty_code = store.code_of[attribute].get("")
        if empty_code is not None:
            where += f" AND r.c{col} != {empty_code}"
        return SqlStrippedPartition.build(store, "rows r", where, f"r.c{col}", max_rid)

    def _sql_pattern_partition(self, state: SqlPatternState) -> SqlStrippedPartition:
        store = self._store
        max_rid = store.row_count
        return SqlStrippedPartition.build(
            store,
            f"rows r JOIN {state.table} m ON m.code = r.c{state.col_index}",
            f"r.rid < {max_rid}",
            "m.comp",
            max_rid,
        )

    def _build_attribute_partition(self, column: DictionaryColumn) -> StrippedPartition:
        if not isinstance(column, SqlDictionaryColumn):
            return super()._build_attribute_partition(column)
        return self._sql_attribute_partition(column.attribute)

    def _pattern_partition(self, key: PartitionKey, evaluator) -> StrippedPartition:
        cached = self._pattern.get(key)
        if cached is not None:
            self.stats.pattern_hits += 1
            return cached
        column = self._relation.dictionary(key.attribute)
        if not isinstance(column, SqlDictionaryColumn):
            return super()._pattern_partition(key, evaluator)
        self.stats.pattern_misses += 1
        evaluator = evaluator or default_evaluator()
        match = evaluator.match_column(key.pattern, column)
        state = SqlPatternState()
        state.col_index = column._col_index
        for value, result in zip(column.values, match.results):
            state.append_component(value, result)
        state.table = self._store.int_map_table(
            (code, state.comp_of.setdefault(component, len(state.comp_of)))
            for code, component in enumerate(state.components)
            if component is not None
        )
        partition = self._sql_pattern_partition(state)
        self._pattern[key] = partition
        self._pattern_groups[key] = state
        return partition

    # -- delta maintenance ----------------------------------------------------

    def extend_attribute(self, attribute: str, delta: DictionaryDelta) -> StrippedPartition:
        column = self._relation.dictionary(attribute)
        if not isinstance(column, SqlDictionaryColumn):
            return super().extend_attribute(attribute, delta)
        if self._attribute.get(attribute) is None:
            return self.attribute_partition(attribute)
        # The appended rows are already in the store; a fresh spec snapshot
        # (new rid bound, re-checked empty code) *is* the patched partition.
        partition = self._sql_attribute_partition(attribute)
        self._attribute[attribute] = partition
        self.stats.attribute_extends += 1
        return partition

    def extend_pattern(self, key: PartitionKey, delta: DictionaryDelta) -> StrippedPartition:
        state = self._pattern_groups.get(key)
        if not isinstance(state, SqlPatternState):
            return super().extend_pattern(key, delta)
        if self._pattern.get(key) is None:
            return self._pattern_partition(key, None)
        column = self._relation.dictionary(key.attribute)
        compiled = key.pattern
        assert compiled is not None
        new_pairs: list[tuple[int, int]] = []
        for code in range(len(state.components), column.distinct_count):
            value = column.values[code]
            state.append_component(value, compiled.match(value) if value else None)
            component = state.components[code]
            if component is not None:
                new_pairs.append(
                    (code, state.comp_of.setdefault(component, len(state.comp_of)))
                )
        if new_pairs:
            self._store.extend_int_map(state.table, new_pairs)
        partition = self._sql_pattern_partition(state)
        self._pattern[key] = partition
        self.stats.pattern_extends += 1
        return partition

    def update_attribute(self, attribute: str, update: DictionaryUpdate) -> StrippedPartition:
        column = self._relation.dictionary(attribute)
        if not isinstance(column, SqlDictionaryColumn):
            return super().update_attribute(attribute, update)
        if self._attribute.get(attribute) is None:
            return self.attribute_partition(attribute)
        # The updated cells are already in the store's rows table; a fresh
        # spec snapshot (re-checked empty code, new materialization caches)
        # *is* the patched partition — SQLite regroups on demand.
        partition = self._sql_attribute_partition(attribute)
        self._attribute[attribute] = partition
        self.stats.attribute_updates += 1
        return partition

    def update_pattern(self, key: PartitionKey, update: DictionaryUpdate) -> StrippedPartition:
        state = self._pattern_groups.get(key)
        if not isinstance(state, SqlPatternState):
            return super().update_pattern(key, update)
        if self._pattern.get(key) is None:
            return self._pattern_partition(key, None)
        # Values first seen by the update get matched and appended to the
        # (code, comp) scratch map — codes never renumber, so existing map
        # rows stay valid; the refreshed spec then regroups in SQLite.
        column = self._relation.dictionary(key.attribute)
        compiled = key.pattern
        assert compiled is not None
        new_pairs: list[tuple[int, int]] = []
        for code in range(len(state.components), column.distinct_count):
            value = column.values[code]
            state.append_component(value, compiled.match(value) if value else None)
            component = state.components[code]
            if component is not None:
                new_pairs.append(
                    (code, state.comp_of.setdefault(component, len(state.comp_of)))
                )
        if new_pairs:
            self._store.extend_int_map(state.table, new_pairs)
        partition = self._sql_pattern_partition(state)
        self._pattern[key] = partition
        self.stats.pattern_updates += 1
        return partition

    # -- invalidation (also releases the scratch tables) ----------------------

    def invalidate_attribute(self, attribute: str) -> None:
        for key, state in self._pattern_groups.items():
            if (
                key.attribute == attribute
                and isinstance(state, SqlPatternState)
                and state.table
            ):
                self._store.drop_table(state.table)
        super().invalidate_attribute(attribute)

    def invalidate(self) -> None:
        for state in self._pattern_groups.values():
            if isinstance(state, SqlPatternState) and state.table:
                self._store.drop_table(state.table)
        super().invalidate()
