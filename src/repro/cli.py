"""Command line interface: ``pfd-discover``.

Sub-commands
------------
``discover``  — run PFD discovery on a CSV file and print the dependencies.
``detect``    — discover (or load) PFDs and report suspected errors.
``validate``  — load saved PFDs and report per-PFD coverage / violations.
``suite``     — materialize the 15-table synthetic benchmark suite to CSV.
``experiment``— run one of the paper's experiments (table3/table7/table8/
                figure5/figure6/efficiency) and print the reproduced rows.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .cleaning.detector import detect_errors
from .core.pfd import prime_for_pfds
from .core.serialization import load_pfds, save_pfds
from .dataset.csvio import read_csv
from .datagen.suite import materialize_suite
from .discovery.config import DiscoveryConfig
from .discovery.pfd_discovery import PFDDiscoverer
from .engine.evaluator import PatternEvaluator
from .exceptions import ReproError


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--min-support", type=int, default=5,
                        help="minimum support K of a pattern (default 5)")
    parser.add_argument("--noise", type=float, default=0.05,
                        help="allowed violation ratio delta (default 0.05)")
    parser.add_argument("--min-coverage", type=float, default=0.10,
                        help="minimum tableau coverage gamma (default 0.10)")
    parser.add_argument("--max-lhs", type=int, default=1,
                        help="maximum number of LHS attributes (default 1)")
    parser.add_argument("--no-generalize", action="store_true",
                        help="keep constant PFDs instead of generalizing to variable PFDs")
    parser.add_argument("--stats", action="store_true",
                        help="print partition-cache hit/miss counters and "
                             "per-level candidate counts")


def _config_from_args(args: argparse.Namespace) -> DiscoveryConfig:
    return DiscoveryConfig(
        min_support=args.min_support,
        noise_ratio=args.noise,
        min_coverage=args.min_coverage,
        max_lhs_size=args.max_lhs,
        generalize=not args.no_generalize,
    )


def _print_discovery_stats(relation, result) -> None:
    """The ``--stats`` report: partition-cache counters and per-level
    candidate counts (the partition layer's observability hook)."""
    stats = result.partition_stats or relation.partitions().stats
    print(stats.summary())
    manager = relation.partitions()
    print(f"cached partitions: {manager.cached_partition_count()}")
    for level in sorted(result.candidates_per_level):
        print(f"level {level}: {result.candidates_per_level[level]} candidate(s)")


def _command_discover(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv)
    result = PFDDiscoverer(_config_from_args(args)).discover(relation)
    print(result.summary())
    if args.verbose:
        for dependency in result.dependencies:
            print()
            print(dependency.pfd.describe())
    if args.stats:
        _print_discovery_stats(relation, result)
    if args.save:
        path = save_pfds(args.save, result.pfds)
        print(f"saved {len(result.pfds)} PFD(s) to {path}")
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv)
    evaluator = PatternEvaluator()
    if args.load:
        pfds = load_pfds(args.load)
        print(f"loaded {len(pfds)} PFD(s) from {args.load}")
    else:
        result = PFDDiscoverer(_config_from_args(args), evaluator=evaluator).discover(
            relation
        )
        pfds = result.pfds
        if args.stats:
            _print_discovery_stats(relation, result)
    report = detect_errors(relation, pfds, evaluator=evaluator)
    print(report.summary())
    if args.load and args.stats:
        print(relation.partitions().stats.summary())
    if args.save:
        path = save_pfds(args.save, pfds)
        print(f"saved {len(pfds)} PFD(s) to {path}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    relation = read_csv(args.csv)
    pfds = load_pfds(args.load)
    print(f"loaded {len(pfds)} PFD(s) from {args.load}")
    # One shared evaluator for the whole report: sibling PFDs on the same
    # column are batched set-at-a-time (prime_for_pfds inside the PFD calls).
    evaluator = PatternEvaluator()
    prime_for_pfds(relation, pfds, evaluator)
    total_violations = 0
    holding = 0
    for pfd in pfds:
        coverage = pfd.coverage(relation, evaluator=evaluator)
        violations = pfd.violations(relation, evaluator=evaluator)
        total_violations += len(violations)
        if not violations:
            holding += 1
        print(
            f"  {pfd}: coverage={coverage:.2%}, "
            f"violations={len(violations)}"
        )
    print(
        f"{holding}/{len(pfds)} PFD(s) hold on {relation.name!r} "
        f"({total_violations} violation(s) in total)"
    )
    return 0


def _command_suite(args: argparse.Namespace) -> int:
    paths = materialize_suite(args.directory, scale=args.scale)
    for path in paths:
        print(path)
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    # Imported lazily: the experiment runners pull in the full generator suite.
    from .experiments import (
        run_efficiency,
        run_figure5,
        run_figure6,
        run_table3,
        run_table7,
        run_table8,
    )

    name = args.name
    scale = args.scale
    if name == "table3":
        print(run_table3(scale=scale).render())
    elif name == "table7":
        print(run_table7(scale=scale).render())
    elif name == "table8":
        print(run_table8(scale=scale).render())
    elif name == "figure5":
        print(run_figure5(rows=max(200, int(920 * scale))).render())
    elif name == "figure6":
        print(run_figure6(rows=max(200, int(920 * scale))).render())
    elif name == "efficiency":
        print(run_efficiency().render())
    else:  # pragma: no cover - argparse choices prevent this
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pfd-discover",
        description="Pattern functional dependency discovery and error detection",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser("discover", help="discover PFDs in a CSV file")
    discover.add_argument("csv", help="path to the input CSV file")
    discover.add_argument("--verbose", action="store_true", help="print full tableaux")
    discover.add_argument("--save", metavar="PATH",
                          help="write the discovered PFDs to a JSON file")
    _add_config_arguments(discover)
    discover.set_defaults(handler=_command_discover)

    detect = subparsers.add_parser("detect", help="detect errors in a CSV file using discovered PFDs")
    detect.add_argument("csv", help="path to the input CSV file")
    detect.add_argument("--load", metavar="PATH",
                        help="load PFDs from a JSON file instead of discovering them")
    detect.add_argument("--save", metavar="PATH",
                        help="write the PFDs used for detection to a JSON file")
    _add_config_arguments(detect)
    detect.set_defaults(handler=_command_detect)

    validate = subparsers.add_parser(
        "validate", help="validate saved PFDs against a CSV file (coverage + violations)"
    )
    validate.add_argument("csv", help="path to the input CSV file")
    validate.add_argument("--load", metavar="PATH", required=True,
                          help="JSON file of PFDs to validate (from discover/detect --save)")
    validate.set_defaults(handler=_command_validate)

    suite = subparsers.add_parser("suite", help="materialize the synthetic benchmark suite as CSV")
    suite.add_argument("directory", help="output directory")
    suite.add_argument("--scale", type=float, default=1.0, help="row-count scale factor")
    suite.set_defaults(handler=_command_suite)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument(
        "name",
        choices=["table3", "table7", "table8", "figure5", "figure6", "efficiency"],
    )
    experiment.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    experiment.set_defaults(handler=_command_experiment)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
