"""Command line interface: ``pfd-discover``.

Every data-facing sub-command is a thin shell over one
:class:`~repro.session.CleaningSession`: the CSV is loaded once, the engine
caches (evaluator, dictionaries, stripped partitions) are primed once, and
the stages compose — ``clean`` runs discover → detect → repair end-to-end
without re-reading or re-priming anything.

Sub-commands
------------
``discover``  — run PFD discovery on a CSV file and print the dependencies.
``detect``    — discover (or load) PFDs and report suspected errors.
``repair``    — discover (or load) PFDs, detect, and apply repairs.
``clean``     — end-to-end: discover → detect → repair → write the repaired
                CSV plus a JSON report.  Exits 0 when the repaired table is
                clean, 1 when suspect cells remain, 2 on errors.
``ingest``    — append a CSV of new rows to a cleaned base table and report
                only the errors the batch introduced (delta detection over
                the incrementally maintained engine caches).  Same exit-code
                convention as ``clean``: 0 delta clean, 1 new errors, 2 on
                failure.
``update``    — apply a mutation document (cell overwrites / deletes /
                appends from an ``--ops`` JSON file or repeated ``--cell``
                flags) to a base table and report only the errors among the
                touched tuples — the same delta-report shape and exit codes
                as ``ingest``.
``delete``    — tombstone rows (``--rows 3,5,7``) and re-check the classes
                they left; same report shape and exit codes as ``update``.
``scenario``  — build a schema-driven scenario (a JSON/YAML spec file or a
                named shape from the built-in matrix), stream its CRUD
                op-mix through the session, and report the surviving errors.
``validate``  — load saved PFDs and report per-PFD coverage / violations.
``suite``     — materialize the 15-table synthetic benchmark suite to CSV.
``experiment``— run one of the paper's experiments (table3/table7/table8/
                figure5/figure6/efficiency) and print the reproduced rows.
``serve``     — run the long-lived cleaning service daemon: concurrent
                tenant sessions over a persistent constraint registry
                (see :mod:`repro.service`).
``client``    — drive a running daemon over HTTP (load/discover/detect/
                ingest/update/delete/validate/repair/stats/…); prints the
                JSON response.  ``detect``/``ingest``/``update``/``delete``
                exit 1 when errors were found, so the smoke jobs can assert
                on cleanliness.

``--stats`` (on discover/detect/validate/repair/clean) prints the session's
:class:`~repro.session.SessionStats` — shared-cache counters covering both
pattern matching and the partition layer.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .cleaning.detector import DetectionReport
from .core.serialization import load_pfds, save_pfds
from .datagen.suite import materialize_suite
from .dataset.csvio import read_csv, write_csv
from .dataset.mutations import DeleteOp, MutationBatch, UpdateOp, batch_from_document
from .discovery.config import DiscoveryConfig
from .engine.backend import available_backends
from .exceptions import ReproError
from .session import CleaningSession


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--min-support", type=int, default=5,
                        help="minimum support K of a pattern (default 5)")
    parser.add_argument("--noise", type=float, default=0.05,
                        help="allowed violation ratio delta (default 0.05)")
    parser.add_argument("--min-coverage", type=float, default=0.10,
                        help="minimum tableau coverage gamma (default 0.10)")
    parser.add_argument("--max-lhs", type=int, default=1,
                        help="maximum number of LHS attributes (default 1)")
    parser.add_argument("--no-generalize", action="store_true",
                        help="keep constant PFDs instead of generalizing to variable PFDs")
    _add_stats_argument(parser)


def _add_stats_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stats", action="store_true",
                        help="print the session's shared-cache counters "
                             "(pattern matching + partition cache)")
    parser.add_argument("--engine", default=None, metavar="BACKEND",
                        help="engine backend: 'numpy' (vectorized columnar "
                             "core, default when numpy is importable), "
                             "'python' (dependency-free fallback), or 'sql' "
                             "(out-of-core SQLite store for tables larger "
                             "than RAM); all produce identical results")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="process-parallel workers for discovery and "
                             "detection (default: REPRO_WORKERS env var, "
                             "else 1 = serial); results are identical at "
                             "any worker count")


def _config_from_args(args: argparse.Namespace) -> DiscoveryConfig:
    return DiscoveryConfig(
        min_support=args.min_support,
        noise_ratio=args.noise,
        min_coverage=args.min_coverage,
        max_lhs_size=args.max_lhs,
        generalize=not args.no_generalize,
    )


def _resolve_engine(args: argparse.Namespace) -> Optional[str]:
    """Validate ``--engine`` eagerly — before any CSV is read — so a typo or
    an unavailable backend fails with the available choices instead of a
    late resolution error deep in the pipeline."""
    engine = getattr(args, "engine", None)
    if engine is None:
        return None
    normalized = engine.strip().lower()
    available = available_backends()
    if normalized not in available:
        raise ReproError(
            f"unknown or unavailable engine backend {engine!r}: "
            f"available backends are {', '.join(available)}"
        )
    return normalized


def _session_from_args(args: argparse.Namespace) -> CleaningSession:
    config = _config_from_args(args) if hasattr(args, "min_support") else None
    backend = _resolve_engine(args)
    workers = getattr(args, "workers", None)
    return CleaningSession.from_csv(
        args.csv, config=config, backend=backend, workers=workers
    )


def _session_pfds(session: CleaningSession, args: argparse.Namespace):
    """The PFD set a command works with: loaded from ``--load``, otherwise
    discovered on the session (memoized for any later stage)."""
    if getattr(args, "load", None):
        pfds = load_pfds(args.load)
        print(f"loaded {len(pfds)} PFD(s) from {args.load}")
        return pfds
    return session.discover().pfds


def _print_stats(session: CleaningSession) -> None:
    print(session.stats().summary())
    discovery = session.discovery
    if discovery is not None:
        for level in sorted(discovery.candidates_per_level):
            print(f"level {level}: {discovery.candidates_per_level[level]} candidate(s)")


def _maybe_save(args: argparse.Namespace, pfds) -> None:
    if getattr(args, "save", None):
        path = save_pfds(args.save, pfds)
        print(f"saved {len(pfds)} PFD(s) to {path}")


def _command_discover(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    result = session.discover()
    print(result.summary())
    if args.verbose:
        for dependency in result.dependencies:
            print()
            print(dependency.pfd.describe())
    if args.stats:
        _print_stats(session)
    _maybe_save(args, result.pfds)
    return 0


def _command_detect(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    pfds = _session_pfds(session, args)
    report = session.detect(pfds if args.load else None)
    print(report.summary())
    if args.stats:
        _print_stats(session)
    _maybe_save(args, pfds)
    return 0


def _command_repair(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    pfds = _session_pfds(session, args)
    result = session.repair(
        pfds if args.load else None,
        min_evidence=args.min_evidence,
        verify=not args.no_verify,
    )
    print(result.summary())
    if result.remaining_error_cells is not None:
        print(
            f"verification: {len(result.remaining_error_cells)} suspect cell(s) "
            "remain on the repaired table"
        )
    if args.output:
        path = Path(args.output)
        write_csv(result.relation, path)
        print(f"wrote repaired CSV to {path}")
    if args.stats:
        _print_stats(session)
    _maybe_save(args, pfds)
    return 0


def _command_clean(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    pfds = _session_pfds(session, args)
    explicit = pfds if args.load else None
    report = session.detect(explicit, min_evidence=args.min_evidence)
    print(report.summary())
    result = session.repair(explicit, min_evidence=args.min_evidence, verify=True)
    print(result.summary())
    remaining = result.remaining_error_cells or frozenset()
    print(
        f"verification: {len(remaining)} suspect cell(s) remain on the repaired table"
    )

    output = Path(args.output) if args.output else Path(args.csv).with_suffix(".cleaned.csv")
    write_csv(result.relation, output)
    print(f"wrote repaired CSV to {output}")

    stats = session.stats()
    if args.report:
        report_doc = {
            "input": str(args.csv),
            "output": str(output),
            "pfds": len(pfds),
            "pfds_loaded": bool(args.load),
            "detected_errors": len(report.errors),
            "repairs_applied": len(result.repairs),
            "unresolved_cells": len(result.unresolved),
            "remaining_errors": len(remaining),
            "clean": not remaining,
            "stats": stats.to_json_dict(),
        }
        report_path = Path(args.report)
        report_path.write_text(
            json.dumps(report_doc, ensure_ascii=False, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote JSON report to {report_path}")
    if args.stats:
        _print_stats(session)
    _maybe_save(args, pfds)
    return 0 if not remaining else 1


def _command_ingest(args: argparse.Namespace) -> int:
    session = _session_from_args(args)
    pfds = _session_pfds(session, args)
    base_rows = session.relation.row_count

    batch = read_csv(args.batch)
    if batch.attribute_names != session.relation.attribute_names:
        raise ReproError(
            f"batch columns {list(batch.attribute_names)} do not match "
            f"base columns {list(session.relation.attribute_names)}"
        )
    appended = session.append(batch.iter_rows())
    print(f"appended {len(appended)} row(s) to {args.csv} ({base_rows} before)")

    if len(appended):
        report = session.detect_new(
            pfds if args.load else None, min_evidence=args.min_evidence
        )
    else:
        # A legitimately empty batch: nothing to validate, the delta is clean.
        report = DetectionReport(
            relation_name=session.relation.name, errors=[], violations=[]
        )
    print(report.summary())

    if args.output:
        path = Path(args.output)
        write_csv(session.relation, path)
        print(f"wrote merged CSV to {path}")

    error_rows = sorted({error.cell.row_id for error in report.errors})
    if args.report:
        report_doc = {
            "base": str(args.csv),
            "batch": str(args.batch),
            "rows_before": base_rows,
            "rows_appended": len(appended),
            "appended_start": appended.start,
            "pfds": len(pfds),
            "pfds_loaded": bool(args.load),
            "new_errors": len(report.errors),
            "error_rows": error_rows,
            "errors": [
                {
                    "row": error.cell.row_id,
                    "attribute": error.cell.attribute,
                    "value": error.current_value,
                    "suggested": error.suggested_value,
                    "evidence": error.evidence_count,
                }
                for error in report.errors
            ],
            "clean": not report.errors,
            "stats": session.stats().to_json_dict(),
        }
        report_path = Path(args.report)
        report_path.write_text(
            json.dumps(report_doc, ensure_ascii=False, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote JSON delta report to {report_path}")
    if args.stats:
        _print_stats(session)
    _maybe_save(args, pfds)
    return 0 if not report.errors else 1


def _delta_report_doc(
    args: argparse.Namespace,
    session: CleaningSession,
    pfds,
    result,
    report: DetectionReport,
    rows_before: int,
    kind: str,
    **extra,
) -> dict:
    """The shared delta-report document: one schema for ``ingest`` /
    ``update`` / ``delete`` (and mirrored by the service's mutation
    endpoints) — ``error_rows`` + ``clean`` drive the 0/1 exit codes."""
    doc = {
        "base": str(args.csv),
        "kind": kind,
        "rows_before": rows_before,
        "rows_updated": len(result.updated_rows),
        "rows_deleted": len(result.deleted_rows),
        "rows_appended": len(result.appended),
        "changed_rows": list(result.changed_rows),
        "pfds": len(pfds),
        "pfds_loaded": bool(args.load),
        "new_errors": len(report.errors),
        "error_rows": sorted({error.cell.row_id for error in report.errors}),
        "errors": [
            {
                "row": error.cell.row_id,
                "attribute": error.cell.attribute,
                "value": error.current_value,
                "suggested": error.suggested_value,
                "evidence": error.evidence_count,
            }
            for error in report.errors
        ],
        "clean": not report.errors,
        "stats": session.stats().to_json_dict(),
    }
    doc.update(extra)
    return doc


def _run_mutation(args: argparse.Namespace, batch: MutationBatch, kind: str, **extra) -> int:
    """Shared core of ``update`` / ``delete``: apply the batch, re-detect only
    the touched tuples, and emit the ingest-style delta report."""
    session = _session_from_args(args)
    pfds = _session_pfds(session, args)
    rows_before = session.relation.row_count
    result = session.apply(batch)
    print(
        f"applied {len(result.updated_rows)} update(s), "
        f"{len(result.deleted_rows)} delete(s), "
        f"{len(result.appended)} append(s) to {args.csv} ({rows_before} rows before)"
    )
    if result:
        report = session.detect_changed(
            pfds if args.load else None, min_evidence=args.min_evidence
        )
    else:
        # Every assignment matched the stored value: nothing moved, clean delta.
        report = DetectionReport(
            relation_name=session.relation.name, errors=[], violations=[]
        )
    print(report.summary())

    if args.output:
        path = Path(args.output)
        write_csv(session.relation, path)
        print(f"wrote mutated CSV to {path}")

    if args.report:
        report_doc = _delta_report_doc(
            args, session, pfds, result, report, rows_before, kind, **extra
        )
        report_path = Path(args.report)
        report_path.write_text(
            json.dumps(report_doc, ensure_ascii=False, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote JSON delta report to {report_path}")
    if args.stats:
        _print_stats(session)
    _maybe_save(args, pfds)
    return 0 if not report.errors else 1


def _command_update(args: argparse.Namespace) -> int:
    document: dict = {}
    if args.ops:
        try:
            document = json.loads(Path(args.ops).read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ReproError(f"ops file {args.ops} is not valid JSON: {error}")
        if not isinstance(document, dict):
            raise ReproError(f"ops file {args.ops} must hold a JSON object")
    if args.cell:
        cells = list(document.get("cells") or [])
        for row_id, attribute, value in args.cell:
            try:
                row = int(row_id)
            except ValueError:
                raise ReproError(f"--cell row id must be an integer, got {row_id!r}")
            cells.append([row, attribute, value])
        document["cells"] = cells
    if not document:
        raise ReproError("update needs --ops FILE and/or --cell ROW ATTR VALUE")
    batch = batch_from_document(document)
    return _run_mutation(
        args, batch, kind="update", ops=str(args.ops) if args.ops else None
    )


def _command_delete(args: argparse.Namespace) -> int:
    row_ids = _parse_row_ids(args.rows)
    batch = MutationBatch.deletes(row_ids)
    return _run_mutation(args, batch, kind="delete", requested_rows=row_ids)


def _parse_row_ids(text: str) -> list[int]:
    row_ids = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            row_ids.append(int(token))
        except ValueError:
            raise ReproError(f"--rows expects comma-separated integers, got {token!r}")
    if not row_ids:
        raise ReproError("--rows is empty: give at least one row id")
    return sorted(set(row_ids))


def _command_scenario(args: argparse.Namespace) -> int:
    from .datagen.scenario import SCENARIO_MATRIX, load_scenario

    if args.spec in SCENARIO_MATRIX:
        spec = SCENARIO_MATRIX[args.spec]
    else:
        spec = load_scenario(args.spec)
    table = spec.build(scale=args.scale, backend=_resolve_engine(args))
    session = CleaningSession(
        table.relation,
        config=_config_from_args(args),
        workers=getattr(args, "workers", None),
    )
    session.discover()
    print(
        f"scenario {spec.name!r}: {table.relation.row_count} rows x "
        f"{len(table.relation.schema)} columns, "
        f"{len(session.pfds)} PFD(s) discovered"
    )

    op_counts = {"update": 0, "append": 0, "delete": 0}
    error_rows: set[int] = set()
    total_errors = 0
    batches = 0
    for batch in spec.mutation_stream(
        session.relation, operations=args.operations, batch_size=args.batch_size
    ):
        for op in batch:
            if isinstance(op, UpdateOp):
                op_counts["update"] += 1
            elif isinstance(op, DeleteOp):
                op_counts["delete"] += 1
            else:
                op_counts["append"] += 1
        result = session.apply(batch)
        report = session.detect_changed(min_evidence=args.min_evidence)
        total_errors += len(report.errors)
        error_rows.update(error.cell.row_id for error in report.errors)
        batches += 1
    print(
        f"streamed {args.operations} op(s) in {batches} batch(es) "
        f"({op_counts['update']} update / {op_counts['append']} append / "
        f"{op_counts['delete']} delete): {total_errors} delta error(s)"
    )

    if args.output:
        path = Path(args.output)
        write_csv(session.relation, path)
        print(f"wrote final table to {path}")
    if args.report:
        report_doc = {
            "scenario": spec.name,
            "kind": "scenario",
            "rows": session.relation.row_count,
            "columns": len(session.relation.schema),
            "pfds": len(session.pfds),
            "operations": args.operations,
            "op_counts": op_counts,
            "new_errors": total_errors,
            "error_rows": sorted(error_rows),
            "clean": total_errors == 0,
            "stats": session.stats().to_json_dict(),
        }
        report_path = Path(args.report)
        report_path.write_text(
            json.dumps(report_doc, ensure_ascii=False, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote JSON scenario report to {report_path}")
    if args.stats:
        _print_stats(session)
    return 0 if total_errors == 0 else 1


def _command_validate(args: argparse.Namespace) -> int:
    session = CleaningSession.from_csv(
        args.csv, backend=_resolve_engine(args),
        workers=getattr(args, "workers", None),
    )
    pfds = load_pfds(args.load)
    print(f"loaded {len(pfds)} PFD(s) from {args.load}")
    print(session.validate(pfds).summary())
    if args.stats:
        _print_stats(session)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported lazily: plain pipeline commands never pay for the service tier.
    from .service import CleaningService, serve

    service = CleaningService(
        args.registry,
        max_sessions=args.max_sessions,
        backend=_resolve_engine(args),
        workers=getattr(args, "workers", None),
    )
    print(
        f"serving cleaning service on http://{args.host}:{args.port} "
        f"(registry {args.registry}, max {args.max_sessions} live session(s)) "
        f"— stop with POST /shutdown or Ctrl-C"
    )
    serve(service, host=args.host, port=args.port, quiet=args.quiet)
    print("cleaning service stopped")
    return 0


def _command_client(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.url)
    action = args.action

    def read_csv_text() -> str:
        if not args.csv:
            raise ReproError(f"client {action} needs --csv PATH")
        return Path(args.csv).read_text(encoding="utf-8")

    def need_tenant() -> str:
        if not args.tenant:
            raise ReproError(f"client {action} needs --tenant NAME")
        return args.tenant

    if action == "health":
        document = client.health()
    elif action == "wait":
        document = client.wait_until_ready()
    elif action == "stats":
        document = client.stats()
    elif action == "tenants":
        document = client.tenants()
    elif action == "info":
        document = client.tenant(need_tenant())
    elif action == "load":
        document = client.load(need_tenant(), csv_text=read_csv_text())
    elif action == "profile":
        document = client.profile(need_tenant())
    elif action == "discover":
        config = {}
        if args.min_support is not None:
            config["min_support"] = args.min_support
        if args.noise is not None:
            config["noise_ratio"] = args.noise
        if args.min_coverage is not None:
            config["min_coverage"] = args.min_coverage
        if args.max_lhs is not None:
            config["max_lhs_size"] = args.max_lhs
        document = client.discover(need_tenant(), **config)
    elif action == "detect":
        document = client.detect(need_tenant(), min_evidence=args.min_evidence)
    elif action == "validate":
        document = client.validate(need_tenant())
    elif action == "repair":
        document = client.repair(need_tenant(), min_evidence=args.min_evidence)
    elif action == "ingest":
        document = client.ingest(
            need_tenant(),
            csv_text=read_csv_text(),
            min_evidence=args.min_evidence,
        )
    elif action == "update":
        if not args.ops:
            raise ReproError("client update needs --ops PATH (a JSON mutation document)")
        try:
            ops_document = json.loads(Path(args.ops).read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ReproError(f"ops file {args.ops} is not valid JSON: {error}")
        if not isinstance(ops_document, dict):
            raise ReproError(f"ops file {args.ops} must hold a JSON object")
        document = client.update(
            need_tenant(), ops_document, min_evidence=args.min_evidence
        )
    elif action == "delete":
        if not args.rows:
            raise ReproError("client delete needs --rows IDS (comma-separated)")
        document = client.delete_rows(
            need_tenant(), _parse_row_ids(args.rows), min_evidence=args.min_evidence
        )
    elif action == "drop":
        document = client.drop(need_tenant())
    elif action == "shutdown":
        document = client.shutdown()
    else:  # pragma: no cover - argparse choices prevent this
        raise ReproError(f"unknown client action {action!r}")

    print(json.dumps(document, ensure_ascii=False, indent=2))
    if action in ("detect", "ingest", "update", "delete") and not document.get("clean", True):
        return 1
    return 0


def _command_suite(args: argparse.Namespace) -> int:
    paths = materialize_suite(args.directory, scale=args.scale)
    for path in paths:
        print(path)
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    # Imported lazily: the experiment runners pull in the full generator suite.
    from .experiments import (
        run_efficiency,
        run_figure5,
        run_figure6,
        run_table3,
        run_table7,
        run_table8,
    )

    name = args.name
    scale = args.scale
    if name == "table3":
        print(run_table3(scale=scale).render())
    elif name == "table7":
        print(run_table7(scale=scale).render())
    elif name == "table8":
        print(run_table8(scale=scale).render())
    elif name == "figure5":
        print(run_figure5(rows=max(200, int(920 * scale))).render())
    elif name == "figure6":
        print(run_figure6(rows=max(200, int(920 * scale))).render())
    elif name == "efficiency":
        print(run_efficiency().render())
    else:  # pragma: no cover - argparse choices prevent this
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pfd-discover",
        description="Pattern functional dependency discovery and error detection",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser("discover", help="discover PFDs in a CSV file")
    discover.add_argument("csv", help="path to the input CSV file")
    discover.add_argument("--verbose", action="store_true", help="print full tableaux")
    discover.add_argument("--save", metavar="PATH",
                          help="write the discovered PFDs to a JSON file")
    _add_config_arguments(discover)
    discover.set_defaults(handler=_command_discover)

    detect = subparsers.add_parser("detect", help="detect errors in a CSV file using discovered PFDs")
    detect.add_argument("csv", help="path to the input CSV file")
    detect.add_argument("--load", metavar="PATH",
                        help="load PFDs from a JSON file instead of discovering them")
    detect.add_argument("--save", metavar="PATH",
                        help="write the PFDs used for detection to a JSON file")
    _add_config_arguments(detect)
    detect.set_defaults(handler=_command_detect)

    repair = subparsers.add_parser(
        "repair", help="detect and repair errors in a CSV file using discovered PFDs"
    )
    repair.add_argument("csv", help="path to the input CSV file")
    repair.add_argument("--load", metavar="PATH",
                        help="load PFDs from a JSON file instead of discovering them")
    repair.add_argument("--save", metavar="PATH",
                        help="write the PFDs used for repair to a JSON file")
    repair.add_argument("--output", metavar="PATH",
                        help="write the repaired table to this CSV file")
    repair.add_argument("--min-evidence", type=int, default=1,
                        help="violations needed before a cell is repaired (default 1)")
    repair.add_argument("--no-verify", action="store_true",
                        help="skip re-detecting on the repaired table")
    _add_config_arguments(repair)
    repair.set_defaults(handler=_command_repair)

    clean = subparsers.add_parser(
        "clean",
        help="end-to-end cleaning: discover, detect, repair, write CSV + report "
             "(exit 0 clean / 1 errors remain / 2 failure)",
    )
    clean.add_argument("csv", help="path to the input CSV file")
    clean.add_argument("--load", metavar="PATH",
                       help="load PFDs from a JSON file instead of discovering them")
    clean.add_argument("--save", metavar="PATH",
                       help="write the PFDs used for cleaning to a JSON file")
    clean.add_argument("--output", metavar="PATH",
                       help="repaired CSV path (default: <input>.cleaned.csv)")
    clean.add_argument("--report", metavar="PATH",
                       help="write a JSON cleaning report to this path")
    clean.add_argument("--min-evidence", type=int, default=1,
                       help="violations needed before a cell is repaired (default 1)")
    _add_config_arguments(clean)
    clean.set_defaults(handler=_command_clean)

    ingest = subparsers.add_parser(
        "ingest",
        help="append a CSV batch to a cleaned base table and report only the "
             "errors the batch introduced (exit 0 delta clean / 1 new errors / 2 failure)",
    )
    ingest.add_argument("csv", help="path to the cleaned base CSV file")
    ingest.add_argument("batch", help="path to the CSV file of rows to append")
    ingest.add_argument("--load", metavar="PATH",
                        help="load PFDs from a JSON file instead of discovering them "
                             "on the base table")
    ingest.add_argument("--save", metavar="PATH",
                        help="write the PFDs used for delta detection to a JSON file")
    ingest.add_argument("--output", metavar="PATH",
                        help="write the merged (base + batch) table to this CSV file")
    ingest.add_argument("--report", metavar="PATH",
                        help="write a JSON delta report to this path")
    ingest.add_argument("--min-evidence", type=int, default=1,
                        help="violations needed before a cell is reported (default 1)")
    _add_config_arguments(ingest)
    ingest.set_defaults(handler=_command_ingest)

    update = subparsers.add_parser(
        "update",
        help="apply a mutation document to a base table and report only the "
             "errors among the touched tuples (exit 0 delta clean / 1 new "
             "errors / 2 failure)",
    )
    update.add_argument("csv", help="path to the base CSV file")
    update.add_argument("--ops", metavar="PATH",
                        help="JSON mutation document: {'cells': [[row, attr, value], ...]} "
                             "and/or 'delete', 'rows', 'ops' keys")
    update.add_argument("--cell", nargs=3, action="append",
                        metavar=("ROW", "ATTR", "VALUE"),
                        help="one cell overwrite (repeatable; merged with --ops)")
    update.add_argument("--load", metavar="PATH",
                        help="load PFDs from a JSON file instead of discovering them "
                             "on the base table")
    update.add_argument("--save", metavar="PATH",
                        help="write the PFDs used for delta detection to a JSON file")
    update.add_argument("--output", metavar="PATH",
                        help="write the mutated table to this CSV file")
    update.add_argument("--report", metavar="PATH",
                        help="write a JSON delta report to this path")
    update.add_argument("--min-evidence", type=int, default=1,
                        help="violations needed before a cell is reported (default 1)")
    _add_config_arguments(update)
    update.set_defaults(handler=_command_update)

    delete = subparsers.add_parser(
        "delete",
        help="tombstone rows of a base table and re-check the classes they "
             "left (exit 0 delta clean / 1 new errors / 2 failure)",
    )
    delete.add_argument("csv", help="path to the base CSV file")
    delete.add_argument("--rows", required=True, metavar="IDS",
                        help="comma-separated row ids to delete (e.g. 3,5,7)")
    delete.add_argument("--load", metavar="PATH",
                        help="load PFDs from a JSON file instead of discovering them "
                             "on the base table")
    delete.add_argument("--save", metavar="PATH",
                        help="write the PFDs used for delta detection to a JSON file")
    delete.add_argument("--output", metavar="PATH",
                        help="write the mutated table to this CSV file")
    delete.add_argument("--report", metavar="PATH",
                        help="write a JSON delta report to this path")
    delete.add_argument("--min-evidence", type=int, default=1,
                        help="violations needed before a cell is reported (default 1)")
    _add_config_arguments(delete)
    delete.set_defaults(handler=_command_delete)

    scenario = subparsers.add_parser(
        "scenario",
        help="build a schema-driven scenario and stream its CRUD op-mix "
             "through delta detection (exit 0 clean / 1 errors / 2 failure)",
    )
    scenario.add_argument("spec",
                          help="scenario spec file (.json/.yaml) or a built-in "
                               "matrix name (tall_narrow, wide_sparse, "
                               "high_cardinality, adversarial_free_start)")
    scenario.add_argument("--operations", type=int, default=100, metavar="N",
                          help="CRUD ops to stream through the session (default 100)")
    scenario.add_argument("--batch-size", type=int, default=10, metavar="K",
                          help="ops per mutation batch (default 10)")
    scenario.add_argument("--scale", type=float, default=1.0,
                          help="row-count scale factor for the built table")
    scenario.add_argument("--output", metavar="PATH",
                          help="write the final table to this CSV file")
    scenario.add_argument("--report", metavar="PATH",
                          help="write a JSON scenario report to this path")
    scenario.add_argument("--min-evidence", type=int, default=1,
                          help="violations needed before a cell is reported (default 1)")
    _add_config_arguments(scenario)
    scenario.set_defaults(handler=_command_scenario)

    validate = subparsers.add_parser(
        "validate", help="validate saved PFDs against a CSV file (coverage + violations)"
    )
    validate.add_argument("csv", help="path to the input CSV file")
    validate.add_argument("--load", metavar="PATH", required=True,
                          help="JSON file of PFDs to validate (from discover/detect --save)")
    _add_stats_argument(validate)
    validate.set_defaults(handler=_command_validate)

    serve = subparsers.add_parser(
        "serve",
        help="run the cleaning service daemon: concurrent tenant sessions "
             "over a persistent constraint registry (JSON over HTTP)",
    )
    serve.add_argument("--registry", required=True, metavar="DIR",
                       help="registry directory holding per-tenant pfds.json + data.csv "
                            "(created if missing; survives restarts)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="port to listen on (default 8765)")
    serve.add_argument("--max-sessions", type=int, default=8, metavar="K",
                       help="LRU bound on live tenant sessions (default 8); "
                            "evicted tenants rehydrate from the registry")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines")
    serve.add_argument("--engine", default=None, metavar="BACKEND",
                       help="engine backend for tenant sessions "
                            "('numpy'/'python'/'sql'; default: process default)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-parallel workers per tenant session "
                            "(default: REPRO_WORKERS, else 1)")
    serve.set_defaults(handler=_command_serve)

    client = subparsers.add_parser(
        "client",
        help="drive a running cleaning service daemon over HTTP "
             "(detect/ingest exit 1 when errors were found)",
    )
    client.add_argument("action",
                        choices=["health", "wait", "stats", "tenants", "info", "load",
                                 "profile", "discover", "detect", "validate",
                                 "repair", "ingest", "update", "delete",
                                 "drop", "shutdown"])
    client.add_argument("--url", default="http://127.0.0.1:8765",
                        help="daemon base URL (default http://127.0.0.1:8765)")
    client.add_argument("--tenant", metavar="NAME",
                        help="tenant name (required by the per-tenant actions)")
    client.add_argument("--csv", metavar="PATH",
                        help="CSV file to upload (load: full table with header; "
                             "ingest: batch with a matching header)")
    client.add_argument("--ops", metavar="PATH",
                        help="update: JSON mutation document to POST")
    client.add_argument("--rows", metavar="IDS",
                        help="delete: comma-separated row ids to delete")
    client.add_argument("--min-evidence", type=int, default=1,
                        help="violations needed before a cell is reported (default 1)")
    client.add_argument("--min-support", type=int, default=None,
                        help="discover: minimum pattern support K")
    client.add_argument("--noise", type=float, default=None,
                        help="discover: allowed violation ratio delta")
    client.add_argument("--min-coverage", type=float, default=None,
                        help="discover: minimum tableau coverage gamma")
    client.add_argument("--max-lhs", type=int, default=None,
                        help="discover: maximum number of LHS attributes")
    client.set_defaults(handler=_command_client)

    suite = subparsers.add_parser("suite", help="materialize the synthetic benchmark suite as CSV")
    suite.add_argument("directory", help="output directory")
    suite.add_argument("--scale", type=float, default=1.0, help="row-count scale factor")
    suite.set_defaults(handler=_command_suite)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument(
        "name",
        choices=["table3", "table7", "table8", "figure5", "figure6", "efficiency"],
    )
    experiment.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    experiment.set_defaults(handler=_command_experiment)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
