"""The persistent per-tenant constraint registry.

One directory per tenant under a registry root::

    <root>/
      <tenant>/
        pfds.json   — the tenant's discovered PFD set (the existing
                      ``pfd-set/1`` JSON format, written by ``save_pfds``
                      with a metadata block: discovery config, row count,
                      and format version), and
        data.csv    — the tenant's table, kept current by ``load`` (full
                      rewrite) and ``ingest`` (append-only, mirroring the
                      in-memory ``append_rows`` delta).

This is the durable half of the serving tier: the LRU session manager may
evict a cold tenant's live :class:`~repro.session.CleaningSession` at any
time, and a daemon restart drops all of them — the registry is what makes
both invisible to the tenant.  Rehydration reads ``data.csv`` back into a
session and the constraint set out of ``pfds.json``; all engine caches are
rebuilt lazily on the next request (bit-identical, per the append/rebuild
parity the engine pins elsewhere).

Writes go through a temp-file-then-rename so a crash mid-save never leaves
a half-written document behind.
"""

from __future__ import annotations

import csv
import os
import re
import shutil
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..core.pfd import PFD
from ..core.serialization import load_pfds_document, pfds_to_json
from ..dataset.csvio import read_csv, write_csv
from ..dataset.relation import Relation
from ..exceptions import ServiceError, UnknownTenantError

#: Tenant names become directory names; keep them to a safe charset.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_PFDS_FILE = "pfds.json"
_DATA_FILE = "data.csv"


def validate_tenant_name(tenant: str) -> str:
    """Return ``tenant`` if it is a safe registry directory name, else raise."""
    if not isinstance(tenant, str) or not _TENANT_NAME.match(tenant):
        raise ServiceError(
            f"invalid tenant name {tenant!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], starting with a letter or digit"
        )
    return tenant


class ConstraintRegistry:
    """Durable per-tenant storage for tables and discovered PFD sets."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- layout --------------------------------------------------------------

    def tenant_dir(self, tenant: str) -> Path:
        return self.root / validate_tenant_name(tenant)

    def constraints_path(self, tenant: str) -> Path:
        return self.tenant_dir(tenant) / _PFDS_FILE

    def data_path(self, tenant: str) -> Path:
        return self.tenant_dir(tenant) / _DATA_FILE

    def tenants(self) -> list[str]:
        """Tenant names with any durable state, sorted."""
        if not self.root.is_dir():
            return []
        names = []
        for entry in self.root.iterdir():
            if not entry.is_dir() or not _TENANT_NAME.match(entry.name):
                continue
            if (entry / _DATA_FILE).exists() or (entry / _PFDS_FILE).exists():
                names.append(entry.name)
        return sorted(names)

    def has_tenant(self, tenant: str) -> bool:
        directory = self.tenant_dir(tenant)
        return (directory / _DATA_FILE).exists() or (directory / _PFDS_FILE).exists()

    def require_tenant(self, tenant: str) -> None:
        if not self.has_tenant(tenant):
            raise UnknownTenantError(
                f"unknown tenant {tenant!r}: load a table for it first"
            )

    # -- constraints ---------------------------------------------------------

    def save_constraints(
        self,
        tenant: str,
        pfds: Sequence[PFD],
        metadata: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Persist a tenant's PFD set (atomic replace); returns the path."""
        directory = self.tenant_dir(tenant)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / _PFDS_FILE
        _atomic_write_text(path, pfds_to_json(pfds, metadata=metadata))
        return path

    def load_constraints(self, tenant: str) -> tuple[Optional[list[PFD]], dict]:
        """The tenant's persisted PFD set and metadata, or ``(None, {})``."""
        path = self.constraints_path(tenant)
        if not path.exists():
            return None, {}
        return load_pfds_document(path)

    def has_constraints(self, tenant: str) -> bool:
        return self.constraints_path(tenant).exists()

    # -- data ----------------------------------------------------------------

    def save_data(self, tenant: str, relation: Relation) -> Path:
        """Persist a tenant's table as CSV (atomic replace); returns the path."""
        directory = self.tenant_dir(tenant)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / _DATA_FILE
        temp = path.with_suffix(".csv.tmp")
        write_csv(relation, temp)
        os.replace(temp, path)
        return path

    def append_data(self, tenant: str, rows: Iterable[Sequence[str]]) -> int:
        """Append rows to a tenant's stored CSV (the durable mirror of
        ``append_rows``); returns the number of rows written."""
        path = self.data_path(tenant)
        if not path.exists():
            raise UnknownTenantError(
                f"tenant {tenant!r} has no stored table to append to"
            )
        written = 0
        with path.open("a", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle, lineterminator="\n")
            for row in rows:
                writer.writerow(row)
                written += 1
        return written

    def load_data(self, tenant: str, backend: Optional[str] = None) -> Relation:
        """Read a tenant's stored table back into a relation."""
        path = self.data_path(tenant)
        if not path.exists():
            raise UnknownTenantError(
                f"tenant {tenant!r} has no stored table: load one first"
            )
        return read_csv(path, name=tenant, backend=backend)

    def has_data(self, tenant: str) -> bool:
        return self.data_path(tenant).exists()

    # -- lifecycle -----------------------------------------------------------

    def delete(self, tenant: str) -> bool:
        """Remove a tenant's durable state; returns whether anything existed."""
        directory = self.tenant_dir(tenant)
        if not directory.exists():
            return False
        shutil.rmtree(directory)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstraintRegistry({str(self.root)!r}, tenants={len(self.tenants())})"


def _atomic_write_text(path: Path, text: str) -> None:
    temp = path.with_suffix(path.suffix + ".tmp")
    temp.write_text(text, encoding="utf-8")
    os.replace(temp, path)
