"""A write-preferring readers-writer lock for per-tenant concurrency.

The serving tier's contract (mirroring Polynesia's transactional/analytical
split) is that *reads scale out and writes stay exclusive*: any number of
``detect``/``validate``/``profile`` requests may evaluate against one
tenant's session concurrently, while ``ingest`` (which delta-maintains the
dictionary / mask / partition caches through ``append_rows``) and
``discover`` (which replaces the tenant's constraint set) take the write
side and see no concurrent readers.

Write preference matters for ingestion latency: a steady stream of
detection reads must not starve an append.  A waiting writer therefore
blocks *new* readers; readers already inside drain first.

The lock also keeps a few counters (acquisitions per side, and the high
watermark of concurrent readers) so the service ``stats`` endpoint — and
the concurrency tests — can observe that reads actually overlapped.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator


class RWLock:
    """Write-preferring readers-writer lock (not reentrant on either side)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        #: Lifetime counters, guarded by the same condition's lock.
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self.max_concurrent_readers = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            # Write preference: a queued writer blocks *new* readers.
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.read_acquisitions += 1
            if self._readers > self.max_concurrent_readers:
                self.max_concurrent_readers = self._readers

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.write_acquisitions += 1

    def try_acquire_write(self) -> bool:
        """Take the write side only if it is free right now (no waiting).

        Used by LRU eviction: a tenant whose lock cannot be grabbed
        immediately is serving an in-flight request and is skipped rather
        than torn down under a reader.
        """
        with self._cond:
            if self._writer_active or self._readers or self._writers_waiting:
                return False
            self._writer_active = True
            self.write_acquisitions += 1
            return True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # -- context managers ----------------------------------------------------

    @contextlib.contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RWLock(readers={self._readers}, writer={self._writer_active}, "
            f"waiting_writers={self._writers_waiting})"
        )
