"""The LRU-bounded tenant session manager.

The daemon may serve far more tenants than it can afford live
:class:`~repro.session.CleaningSession` objects for (each one pins the
decoded table plus dictionary / mask / partition caches).  The manager keeps
at most ``max_sessions`` of them, in LRU order:

* **checkout** returns the live runtime for a tenant, rehydrating it from
  the :class:`~repro.service.registry.ConstraintRegistry` on a miss —
  ``data.csv`` back into a session, ``pfds.json`` back into the active
  constraint set.  Engine caches rebuild lazily on the next stage call;
  the *global* ``compile_pattern_set`` / NFA / DFA memos survive eviction,
  which is what keeps a rehydrated tenant's first request well below a
  true cold start when tenants share pattern shapes.
* **eviction** pops the least-recently-used tenant once the bound is
  exceeded — but only if its readers-writer lock can be taken without
  waiting.  A tenant currently serving a request is skipped (the bound is
  soft for exactly as long as every live tenant is mid-request) and
  retried on the next install.  An evicted victim's session is closed
  *while its write lock is held*, so a request that checked the victim out
  just before eviction can never have its work cancelled mid-stage: it
  either finished already, or wakes up on the lock, notices the runtime is
  no longer live, and retries.  Durable state is not touched: constraints
  and data stay in the registry, which is why eviction is safe at all.

Every runtime owns one :class:`~repro.service.rwlock.RWLock`; the service
layer takes the read side for ``detect``/``validate``/``profile``/``repair``
and the write side for ``load``/``discover``/``ingest``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from typing import Optional

from ..core.pfd import PFD
from ..dataset.relation import Relation
from ..discovery.config import DiscoveryConfig
from ..exceptions import UnknownTenantError
from ..session import CleaningSession
from .registry import ConstraintRegistry
from .rwlock import RWLock


@dataclasses.dataclass
class TenantRuntime:
    """One tenant's live state: a session, its lock, and its constraints."""

    name: str
    session: CleaningSession
    lock: RWLock = dataclasses.field(default_factory=RWLock)
    #: The tenant's active PFD set (discovered this lifetime or rehydrated
    #: from the registry); ``None`` until ``discover`` has run at least once.
    pfds: Optional[list[PFD]] = None
    #: Metadata block of the persisted constraint document.
    constraint_metadata: dict = dataclasses.field(default_factory=dict)
    #: Monotonic timestamps for observability.
    created_at: float = dataclasses.field(default_factory=time.monotonic)
    last_used_at: float = dataclasses.field(default_factory=time.monotonic)
    #: Requests served by this runtime (any endpoint).
    requests: int = 0

    def touch(self) -> None:
        self.last_used_at = time.monotonic()
        self.requests += 1


@dataclasses.dataclass(frozen=True)
class ManagerStats:
    """Counters of one :class:`SessionManager` (for the stats endpoint)."""

    max_sessions: int
    live: int
    live_tenants: tuple[str, ...]
    created: int
    evicted: int
    rehydrated: int
    eviction_skips: int


class SessionManager:
    """At most ``max_sessions`` live tenant runtimes, LRU-evicted."""

    def __init__(
        self,
        registry: ConstraintRegistry,
        max_sessions: int = 8,
        config: Optional[DiscoveryConfig] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be at least 1, got {max_sessions}")
        self.registry = registry
        self.max_sessions = max_sessions
        self.config = config
        self.backend = backend
        self.workers = workers
        self._lock = threading.Lock()
        self._live: "OrderedDict[str, TenantRuntime]" = OrderedDict()
        self._created = 0
        self._evicted = 0
        self._rehydrated = 0
        self._eviction_skips = 0

    # -- checkout / creation -------------------------------------------------

    def checkout(self, tenant: str) -> TenantRuntime:
        """The live runtime for ``tenant``, rehydrated from the registry on
        a miss.  Raises :class:`UnknownTenantError` for tenants with no
        durable state."""
        with self._lock:
            runtime = self._live.get(tenant)
            if runtime is not None:
                self._live.move_to_end(tenant)
                runtime.touch()
                return runtime
        # Rehydrate outside the manager lock: reading the CSV back can be
        # slow, and other tenants' requests must not stall behind it.
        runtime = self._rehydrate(tenant)
        return self._install(runtime, rehydrated=True)

    def create(self, tenant: str, relation: Relation) -> TenantRuntime:
        """Install a *new* runtime for freshly loaded data (replacing any
        live one); the caller persists the data to the registry."""
        runtime = TenantRuntime(name=tenant, session=self._session_for(relation))
        return self._install(runtime, rehydrated=False)

    def _session_for(self, relation: Relation) -> CleaningSession:
        return CleaningSession(
            relation,
            config=self.config,
            backend=self.backend,
            workers=self.workers,
        )

    def _rehydrate(self, tenant: str) -> TenantRuntime:
        if not self.registry.has_data(tenant):
            raise UnknownTenantError(
                f"unknown tenant {tenant!r}: load a table for it first"
            )
        relation = self.registry.load_data(tenant, backend=self.backend)
        pfds, metadata = self.registry.load_constraints(tenant)
        return TenantRuntime(
            name=tenant,
            session=self._session_for(relation),
            pfds=pfds,
            constraint_metadata=metadata,
        )

    def _install(self, runtime: TenantRuntime, rehydrated: bool) -> TenantRuntime:
        with self._lock:
            current = self._live.get(runtime.name)
            if rehydrated and current is not None:
                # Another request rehydrated the same tenant while we were
                # reading the registry; keep the installed one.
                self._live.move_to_end(runtime.name)
                current.touch()
                return current
            if current is not None:
                # Replaced, not closed: a request may hold (or be about to
                # take) its lock.  ``load`` closes the one it drained under
                # its write lock; an unowned orphan is garbage-collected
                # once in-flight requests notice it is stale and retry.
                self._live.pop(runtime.name)
            self._live[runtime.name] = runtime
            self._created += 1
            if rehydrated:
                self._rehydrated += 1
            runtime.touch()
            victims = self._evict_over_capacity_locked(protect=runtime.name)
        for old in victims:
            # The victim's write lock is still held from the eviction probe,
            # so no request is inside the session while its worker pool
            # shuts down; a request queued on the lock wakes up, sees the
            # runtime is no longer live, and retries on a fresh checkout.
            try:
                old.session.close()
            finally:
                old.lock.release_write()
        return runtime

    # -- eviction ------------------------------------------------------------

    def _evict_over_capacity_locked(self, protect: str) -> list[TenantRuntime]:
        """Pop cold LRU runtimes beyond the bound whose write lock is free.

        A runtime serving an in-flight request (its lock cannot be taken
        without waiting) is skipped and retried on the next install — the
        bound is soft under full concurrency, never a deadlock.  The
        just-installed ``protect`` runtime is never a victim: its caller is
        about to use it but has not taken its lock yet, so it would
        otherwise look idle and get orphaned immediately.

        Each returned victim's write lock is **still held**: releasing it
        after the probe would let a request that already checked the victim
        out slip in before ``session.close()`` cancels its work.  The
        caller closes the session and then releases the lock.
        """
        evicted: list[TenantRuntime] = []
        while len(self._live) > self.max_sessions:
            victim_name = None
            for name in self._live:  # oldest first
                if name == protect:
                    continue
                if self._live[name].lock.try_acquire_write():
                    victim_name = name
                    break
                self._eviction_skips += 1
            if victim_name is None:
                break  # every live tenant is mid-request; retry later
            evicted.append(self._live.pop(victim_name))
            self._evicted += 1
        return evicted

    def evict(self, tenant: str) -> bool:
        """Forcibly drop a tenant's live runtime (used by tenant deletion).

        The caller must hold the runtime's write lock (as
        :meth:`~repro.service.app.CleaningService.drop_tenant` does) or
        otherwise guarantee no request is inside the session, since this
        closes its worker pool.
        """
        with self._lock:
            runtime = self._live.pop(tenant, None)
        if runtime is None:
            return False
        runtime.session.close()
        return True

    # -- observability / lifecycle -------------------------------------------

    def live_tenants(self) -> list[str]:
        with self._lock:
            return list(self._live)

    def peek(self, tenant: str) -> Optional[TenantRuntime]:
        """The live runtime without touching LRU order (stats endpoint)."""
        with self._lock:
            return self._live.get(tenant)

    def stats(self) -> ManagerStats:
        with self._lock:
            return ManagerStats(
                max_sessions=self.max_sessions,
                live=len(self._live),
                live_tenants=tuple(self._live),
                created=self._created,
                evicted=self._evicted,
                rehydrated=self._rehydrated,
                eviction_skips=self._eviction_skips,
            )

    def close(self) -> None:
        """Drop every live runtime (their durable state stays registered).

        Each runtime's write lock is taken first, so in-flight requests
        drain before their worker pool disappears under them.
        """
        with self._lock:
            runtimes = list(self._live.values())
            self._live.clear()
        for runtime in runtimes:
            runtime.lock.acquire_write()
            try:
                runtime.session.close()
            finally:
                runtime.lock.release_write()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SessionManager(live={len(self._live)}/{self.max_sessions}, "
            f"evicted={self._evicted}, rehydrated={self._rehydrated})"
        )
