"""The cleaning service: a long-running daemon over persistent constraints.

The serving tier of the reproduction (``pfd-discover serve``).  One process
hosts many tenants: each tenant's table and discovered PFD set live in a
durable :class:`ConstraintRegistry` directory, an LRU-bounded
:class:`SessionManager` keeps the hottest K tenants' engine caches live,
and per-tenant readers-writer locks let concurrent ``detect``/``validate``
reads overlap while ``ingest`` appends exclusively (delta-maintaining the
caches through ``append_rows``).

Layers, transport-independent first::

    ConstraintRegistry     durable per-tenant pfds.json + data.csv
    SessionManager         LRU of live CleaningSessions + RWLocks
    CleaningService        endpoints as methods, counters, latency stats
    http.serve / Client    stdlib JSON-over-HTTP codec around the service

Quick tour (no HTTP needed)::

    from repro.service import CleaningService

    service = CleaningService("registry/", max_sessions=4)
    service.load_tenant("acme", csv_text=open("zips.csv").read())
    service.discover("acme", min_support=3)
    report = service.detect("acme")          # bit-identical to a direct
                                             # CleaningSession.detect()
    print(service.stats()["sessions"])
"""

from .app import CleaningService
from .client import ServiceClient
from .manager import ManagerStats, SessionManager, TenantRuntime
from .registry import ConstraintRegistry, validate_tenant_name
from .rwlock import RWLock
from .http import CleaningServiceServer, serve, start_server

__all__ = [
    "CleaningService",
    "CleaningServiceServer",
    "ConstraintRegistry",
    "ManagerStats",
    "RWLock",
    "ServiceClient",
    "SessionManager",
    "TenantRuntime",
    "serve",
    "start_server",
    "validate_tenant_name",
]
