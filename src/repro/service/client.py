"""A thin stdlib client for the cleaning service daemon.

Mirrors the HTTP routes one-to-one; every method returns the decoded JSON
document.  Service-reported failures raise
:class:`~repro.exceptions.ServiceError` carrying the daemon's message and
status code, so callers (the ``pfd-discover client`` subcommand, the CI
smoke job, the tests) never parse error bodies themselves.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Sequence

from ..exceptions import ServiceError


class ServiceClient:
    """JSON-over-HTTP client for one cleaning-service daemon."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, ensure_ascii=False).encode("utf-8")
            headers["Content-Type"] = "application/json; charset=utf-8"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                message = json.loads(body.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = body.decode("utf-8", "replace")[:200]
            raise ServiceError(
                f"{method} {path} failed ({error.code}): {message or error.reason}",
                status=error.code,
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"could not reach service at {self.base_url}: {error.reason}"
            ) from None

    # -- service endpoints ---------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def tenants(self) -> dict:
        return self._request("GET", "/tenants")

    def tenant(self, tenant: str) -> dict:
        return self._request("GET", f"/tenants/{tenant}")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown", {})

    # -- tenant endpoints ----------------------------------------------------

    def load(
        self,
        tenant: str,
        csv_text: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
        rows: Optional[Sequence[Sequence[str]]] = None,
    ) -> dict:
        payload: dict = {}
        if csv_text is not None:
            payload["csv"] = csv_text
        if columns is not None:
            payload["columns"] = list(columns)
        if rows is not None:
            payload["rows"] = [list(row) for row in rows]
        return self._request("POST", f"/tenants/{tenant}/load", payload)

    def profile(self, tenant: str) -> dict:
        return self._request("POST", f"/tenants/{tenant}/profile", {})

    def discover(self, tenant: str, **config) -> dict:
        return self._request("POST", f"/tenants/{tenant}/discover", config)

    def detect(self, tenant: str, min_evidence: int = 1) -> dict:
        return self._request(
            "POST", f"/tenants/{tenant}/detect", {"min_evidence": min_evidence}
        )

    def validate(self, tenant: str) -> dict:
        return self._request("POST", f"/tenants/{tenant}/validate", {})

    def repair(self, tenant: str, min_evidence: int = 1) -> dict:
        return self._request(
            "POST", f"/tenants/{tenant}/repair", {"min_evidence": min_evidence}
        )

    def ingest(
        self,
        tenant: str,
        rows: Optional[Sequence[Sequence[str]]] = None,
        csv_text: Optional[str] = None,
        min_evidence: int = 1,
    ) -> dict:
        payload: dict = {"min_evidence": min_evidence}
        if rows is not None:
            payload["rows"] = [list(row) for row in rows]
        if csv_text is not None:
            payload["csv"] = csv_text
        return self._request("POST", f"/tenants/{tenant}/ingest", payload)

    def update(self, tenant: str, document: dict, min_evidence: int = 1) -> dict:
        """POST a mutation document (``cells`` / ``delete`` / ``rows`` /
        ``ops`` keys, the :func:`~repro.dataset.mutations.batch_from_document`
        wire form)."""
        payload = dict(document)
        payload["min_evidence"] = min_evidence
        return self._request("POST", f"/tenants/{tenant}/update", payload)

    def delete_rows(self, tenant: str, row_ids: Sequence[int], min_evidence: int = 1) -> dict:
        return self._request(
            "POST",
            f"/tenants/{tenant}/delete",
            {"rows": list(row_ids), "min_evidence": min_evidence},
        )

    def drop(self, tenant: str) -> dict:
        return self._request("DELETE", f"/tenants/{tenant}")

    # -- helpers -------------------------------------------------------------

    def wait_until_ready(self, attempts: int = 50, delay: float = 0.1) -> dict:
        """Poll ``/health`` until the daemon answers (used right after
        starting one as a subprocess); raises after ``attempts`` failures."""
        last: Optional[ServiceError] = None
        for _ in range(attempts):
            try:
                return self.health()
            except ServiceError as error:
                last = error
                time.sleep(delay)
        raise ServiceError(
            f"service at {self.base_url} did not become ready: {last}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient({self.base_url!r})"
