"""The HTTP face of the cleaning service: stdlib-only JSON over HTTP.

``ThreadingHTTPServer`` gives one thread per in-flight request, which is
exactly the concurrency model the service layer is built for: per-tenant
readers-writer locks let ``detect``/``validate`` requests overlap while an
``ingest`` drains them and appends exclusively.  No dependency beyond the
standard library.

Routes (all bodies and responses are JSON)::

    GET    /health                      liveness + version
    GET    /stats                       service counters + live SessionStats
    GET    /tenants                     registered tenants (live flags)
    GET    /tenants/<t>                 one tenant's durable/live state
    POST   /tenants/<t>/load            {"csv": text} | {"columns":[...],"rows":[[...]]}
    POST   /tenants/<t>/profile         {}
    POST   /tenants/<t>/discover        discovery-config knobs (all optional)
    POST   /tenants/<t>/detect          {"min_evidence": 1}
    POST   /tenants/<t>/validate        {}
    POST   /tenants/<t>/repair          {"min_evidence": 1}
    POST   /tenants/<t>/ingest          {"rows": [[...]]} | {"csv": text}
    POST   /tenants/<t>/update          mutation document: {"cells":[[row,attr,value],...]}
                                        | {"delete":[...]} | {"rows":[[...]]} | {"ops":[...]}
    POST   /tenants/<t>/delete          {"rows": [row_id, ...]}
    DELETE /tenants/<t>                 drop tenant (registry + live session)
    POST   /shutdown                    stop serving after this response

Errors come back as ``{"error": message}`` with the status carried by the
raised :class:`~repro.exceptions.ServiceError` (400 by default, 404 for
unknown tenants, 409 for state conflicts); unexpected failures are 500.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..exceptions import ReproError, ServiceError
from .app import CleaningService

_MAX_BODY_BYTES = 64 << 20  # a tenant table upload is text CSV; 64 MiB is ample


class CleaningServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`CleaningService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: CleaningService,
        quiet: bool = False,
    ):
        super().__init__(address, _Handler)
        self.service = service
        #: Silence per-request stderr lines (per server, not per process).
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        display = "127.0.0.1" if host in ("0.0.0.0", "") else host
        return f"http://{display}:{port}"

    def close(self) -> None:
        self.server_close()
        self.service.close()


class _Handler(BaseHTTPRequestHandler):
    server_version = "pfd-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)

    @property
    def service(self) -> CleaningService:
        return self.server.service  # type: ignore[attr-defined]

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        if length > _MAX_BODY_BYTES:
            raise ServiceError(f"request body exceeds {_MAX_BODY_BYTES} bytes", status=413)
        raw = self.rfile.read(length)
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        return body

    def _reply(self, document: dict, status: int = 200) -> None:
        payload = json.dumps(document, ensure_ascii=False).encode("utf-8")
        if status >= 400:
            # Error paths may not have read the request body (413 oversize,
            # unknown routes); with keep-alive the leftover bytes would be
            # parsed as the connection's next request, so close instead.
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch(self, method: str) -> None:
        try:
            handled = self._route(method)
        except ServiceError as error:
            self._reply({"error": str(error)}, status=error.status)
            return
        except ReproError as error:
            self._reply({"error": str(error)}, status=400)
            return
        except Exception as error:  # noqa: BLE001 - the daemon must not die
            self._reply({"error": f"internal error: {error}"}, status=500)
            return
        if not handled:
            self._reply({"error": f"no route for {method} {self.path}"}, status=404)

    def _route(self, method: str) -> bool:
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = [part for part in path.split("/") if part]

        if method == "GET":
            if parts == ["health"]:
                self._reply(self.service.health())
                return True
            if parts == ["stats"]:
                self._reply(self.service.stats())
                return True
            if parts == ["tenants"]:
                self._reply(self.service.list_tenants())
                return True
            if len(parts) == 2 and parts[0] == "tenants":
                self._reply(self.service.tenant_info(parts[1]))
                return True
            return False

        if method == "DELETE":
            if len(parts) == 2 and parts[0] == "tenants":
                self._reply(self.service.drop_tenant(parts[1]))
                return True
            return False

        if method == "POST":
            if parts == ["shutdown"]:
                self._reply({"status": "shutting down"})
                # shutdown() must run off the request thread (it joins the
                # serve loop, which is waiting for this handler to return).
                threading.Thread(target=self.server.shutdown, daemon=True).start()
                return True
            if len(parts) == 3 and parts[0] == "tenants":
                tenant, action = parts[1], parts[2]
                body = self._read_body()
                self._reply(self._tenant_action(tenant, action, body))
                return True
            return False

        return False

    def _tenant_action(self, tenant: str, action: str, body: dict) -> dict:
        service = self.service
        if action == "load":
            return service.load_tenant(
                tenant,
                csv_text=body.get("csv"),
                columns=body.get("columns"),
                rows=body.get("rows"),
            )
        if action == "profile":
            return service.profile(tenant)
        if action == "discover":
            return service.discover(tenant, **body)
        if action == "detect":
            return service.detect(tenant, min_evidence=_min_evidence(body))
        if action == "validate":
            return service.validate(tenant)
        if action == "repair":
            return service.repair(tenant, min_evidence=_min_evidence(body))
        if action == "ingest":
            return service.ingest(
                tenant,
                rows=body.get("rows"),
                csv_text=body.get("csv"),
                min_evidence=_min_evidence(body),
            )
        if action == "update":
            document = {
                key: body[key] for key in ("cells", "delete", "rows", "ops") if key in body
            }
            return service.update(tenant, document, min_evidence=_min_evidence(body))
        if action == "delete":
            return service.delete_rows(
                tenant, body.get("rows"), min_evidence=_min_evidence(body)
            )
        raise ServiceError(f"unknown tenant action {action!r}", status=404)

    # -- HTTP verbs ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def _min_evidence(body: dict) -> int:
    value = body.get("min_evidence", 1)
    if not isinstance(value, int) or value < 1:
        raise ServiceError("'min_evidence' must be an integer >= 1")
    return value


def start_server(
    service: CleaningService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
) -> CleaningServiceServer:
    """Bind a server (``port=0`` picks a free port) without serving yet.

    Callers run :meth:`serve_forever` themselves — the CLI blocks on it, the
    tests run it on a background thread.
    """
    return CleaningServiceServer((host, port), service, quiet=quiet)


def serve(
    service: CleaningService,
    host: str = "127.0.0.1",
    port: int = 8765,
    quiet: bool = False,
    ready: Optional[threading.Event] = None,
) -> None:
    """Serve until ``POST /shutdown`` (or KeyboardInterrupt); closes cleanly."""
    server = start_server(service, host=host, port=port, quiet=quiet)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.close()
