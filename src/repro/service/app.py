"""The cleaning service application: tenants, stages, counters.

:class:`CleaningService` is the transport-independent core of the daemon —
the HTTP layer (:mod:`repro.service.http`) is a thin JSON codec over it, and
the unit tests drive it directly.  One instance owns

* a :class:`~repro.service.registry.ConstraintRegistry` (durable state),
* a :class:`~repro.service.manager.SessionManager` (LRU-bounded live
  sessions), and
* per-endpoint request counters with latency reservoirs (p50/p95).

Concurrency contract (per tenant, via the runtime's RW lock):

=============  ==========  =====================================================
endpoint       lock side   why
=============  ==========  =====================================================
``profile``    read        memoized pure computation
``detect``     read        evaluates against the session's caches
``validate``   read        same
``repair``     read        repairs a *copy*; the session is not mutated
``load``       write\\*     replaces the tenant's table and runtime
``discover``   write       replaces the tenant's active constraint set
``ingest``     write       ``append_rows`` delta-maintains the engine caches
``update``     write       a :class:`MutationBatch` patches the engine caches
``delete``     write       tombstone deletes, same delta-maintenance path
=============  ==========  =====================================================

(\\* ``load`` installs a fresh runtime; the write lock is taken on the old
one so in-flight readers drain first.)

A checked-out runtime can stop being the tenant's live one while a request
queues on its lock (``load`` replaces it, ``DELETE`` drops it, LRU evicts
it).  Every stage therefore re-verifies, after acquiring, that its runtime
is still current and retries on a fresh checkout otherwise — a request
never reads from or writes to an orphaned session.

Reads may still *compute* (a cold rehydrated tenant's first ``detect``
builds caches); the session's internal state lock makes that safe when many
readers land at once, and the memoized result makes every later read a
cache hit.  Stage results returned to the wire are plain JSON documents
assembled while the lock is held, so a report always describes one
consistent relation version — never a torn view across an append.
"""

from __future__ import annotations

import contextlib
import dataclasses
import io
import statistics
import threading
import time
from typing import Iterator, Optional, Sequence, Union

from .. import __version__
from ..cleaning.detector import DetectionReport
from ..cleaning.repair import RepairResult
from ..dataset.csvio import read_csv
from ..dataset.mutations import MutationBatch, batch_from_document
from ..dataset.profiler import TableProfile
from ..discovery.config import DiscoveryConfig
from ..exceptions import ReproError, ServiceError
from ..session import CleaningSession, ValidationReport
from .manager import SessionManager, TenantRuntime
from .registry import ConstraintRegistry

#: Discovery knobs a request body may set (subset of DiscoveryConfig).
_CONFIG_KEYS = (
    "min_support",
    "noise_ratio",
    "min_coverage",
    "max_lhs_size",
    "generalize",
    "workers",
)


class _LatencyReservoir:
    """Per-endpoint latency samples (bounded ring) with p50/p95 summaries."""

    def __init__(self, capacity: int = 512):
        self._capacity = capacity
        self._samples: list[float] = []
        self._next = 0
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self._capacity

    def percentiles(self) -> dict:
        if not self._samples:
            return {"count": 0}
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "mean_ms": round(self.total_seconds / self.count * 1e3, 3),
            "p50_ms": round(_quantile(ordered, 0.50) * 1e3, 3),
            "p95_ms": round(_quantile(ordered, 0.95) * 1e3, 3),
        }


def _quantile(ordered: Sequence[float], q: float) -> float:
    if len(ordered) == 1:
        return ordered[0]
    return statistics.quantiles(ordered, n=100, method="inclusive")[
        max(0, min(98, round(q * 100) - 1))
    ]


class CleaningService:
    """Concurrent cleaning sessions over a persistent constraint registry."""

    def __init__(
        self,
        registry: Union[str, ConstraintRegistry],
        max_sessions: int = 8,
        config: Optional[DiscoveryConfig] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ):
        self.registry = (
            registry
            if isinstance(registry, ConstraintRegistry)
            else ConstraintRegistry(registry)
        )
        self.manager = SessionManager(
            self.registry,
            max_sessions=max_sessions,
            config=config,
            backend=backend,
            workers=workers,
        )
        self.started_at = time.time()
        self._counter_lock = threading.Lock()
        self._latencies: dict[str, _LatencyReservoir] = {}

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, endpoint: str, seconds: float) -> None:
        with self._counter_lock:
            reservoir = self._latencies.get(endpoint)
            if reservoir is None:
                reservoir = self._latencies[endpoint] = _LatencyReservoir()
            reservoir.record(seconds)

    def _timed(self, endpoint: str):
        service = self

        class _Timer:
            def __enter__(self) -> "_Timer":
                self._start = time.perf_counter()
                return self

            def __exit__(self, *exc_info) -> None:
                service._record(endpoint, time.perf_counter() - self._start)

        return _Timer()

    # -- tenant locking ------------------------------------------------------

    @contextlib.contextmanager
    def _tenant_locked(self, tenant: str, write: bool = False) -> Iterator[TenantRuntime]:
        """Checkout ``tenant``'s runtime with its lock held *and current*.

        Between ``checkout`` and the lock acquisition the runtime can be
        replaced (``load``), dropped, or LRU-evicted — waking up on an
        orphaned runtime's lock would mutate a discarded session while the
        durable mirror (``data.csv`` / ``pfds.json``) already belongs to
        the new one.  So after acquiring, verify the runtime is still the
        live one for the tenant and retry on a fresh checkout if not.
        """
        while True:
            runtime = self.manager.checkout(tenant)
            lock = runtime.lock
            acquire = lock.acquire_write if write else lock.acquire_read
            release = lock.release_write if write else lock.release_read
            acquire()
            if self.manager.peek(tenant) is runtime:
                break
            release()
        try:
            yield runtime
        finally:
            release()

    # -- tenant data ---------------------------------------------------------

    def load_tenant(
        self,
        tenant: str,
        csv_text: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
        rows: Optional[Sequence[Sequence[str]]] = None,
    ) -> dict:
        """Create (or replace) a tenant's table from CSV text or rows."""
        with self._timed("load"):
            relation = self._parse_table(tenant, csv_text, columns, rows)
            # Drain in-flight requests on the previous table before the
            # durable state and the runtime flip underneath them.  The
            # peeked runtime may itself be replaced while we queue on its
            # write lock, so verify it is still current after acquiring.
            while True:
                old = self.manager.peek(tenant)
                if old is None:
                    break
                old.lock.acquire_write()
                if self.manager.peek(tenant) is old:
                    break
                old.lock.release_write()
            try:
                self.registry.save_data(tenant, relation)
                runtime = self.manager.create(tenant, relation)
                # A reloaded table keeps its persisted constraints (if any):
                # tenants re-upload data far more often than they re-discover.
                pfds, metadata = self.registry.load_constraints(tenant)
                runtime.pfds = pfds
                runtime.constraint_metadata = metadata
            finally:
                if old is not None:
                    # No request is inside the drained runtime (we hold its
                    # write lock), so its worker pool can shut down safely;
                    # writers still queued on this lock will notice the
                    # runtime is stale and retry against the new one.
                    old.session.close()
                    old.lock.release_write()
            return {
                "tenant": tenant,
                "rows": relation.row_count,
                "columns": list(relation.attribute_names),
                "constraints": len(pfds) if pfds is not None else 0,
            }

    def _parse_table(self, tenant, csv_text, columns, rows):
        from ..dataset.relation import Relation

        if csv_text is not None:
            if not isinstance(csv_text, str):
                raise ServiceError("'csv' must be a string of CSV text")
            try:
                return read_csv(io.StringIO(csv_text), name=tenant)
            except ReproError as error:
                raise ServiceError(f"could not parse CSV for {tenant!r}: {error}")
        if columns is not None and rows is not None:
            try:
                return Relation.from_rows(list(columns), rows, name=tenant)
            except ReproError as error:
                raise ServiceError(f"could not build table for {tenant!r}: {error}")
        raise ServiceError("load needs either 'csv' text or 'columns' + 'rows'")

    # -- pipeline stages -----------------------------------------------------

    def profile(self, tenant: str) -> dict:
        with self._timed("profile"):
            with self._tenant_locked(tenant) as runtime:
                return _profile_doc(runtime.session.profile(), runtime)

    def discover(self, tenant: str, **config_kwargs) -> dict:
        """Run discovery, activate + persist the resulting constraint set."""
        with self._timed("discover"):
            config = self._parse_config(config_kwargs)
            with self._tenant_locked(tenant, write=True) as runtime:
                result = runtime.session.discover(config)
                metadata = {
                    "tenant": tenant,
                    "rows": runtime.session.relation.row_count,
                    "config": {
                        key: getattr(result.config, key) for key in _CONFIG_KEYS[:-1]
                    },
                    "runtime_seconds": result.runtime_seconds,
                    "saved_at": time.time(),
                }
                self.registry.save_constraints(tenant, result.pfds, metadata=metadata)
                runtime.pfds = result.pfds
                runtime.constraint_metadata = metadata
                return {
                    "tenant": tenant,
                    "constraints": len(result.pfds),
                    "pfds": [str(pfd) for pfd in result.pfds],
                    "candidates": result.candidate_count,
                    "runtime_seconds": round(result.runtime_seconds, 6),
                    "persisted": str(self.registry.constraints_path(tenant)),
                }

    def _parse_config(self, config_kwargs: dict) -> Optional[DiscoveryConfig]:
        if not config_kwargs:
            return None
        unknown = set(config_kwargs) - set(_CONFIG_KEYS)
        if unknown:
            raise ServiceError(
                f"unknown discovery option(s) {sorted(unknown)}; "
                f"supported: {list(_CONFIG_KEYS)}"
            )
        try:
            return DiscoveryConfig(**config_kwargs)
        except ReproError as error:
            raise ServiceError(f"invalid discovery config: {error}")

    def _active_pfds(self, runtime: TenantRuntime) -> list:
        if runtime.pfds is None:
            raise ServiceError(
                f"tenant {runtime.name!r} has no constraint set: run discover first",
                status=409,
            )
        return runtime.pfds

    def detect(self, tenant: str, min_evidence: int = 1) -> dict:
        with self._timed("detect"):
            with self._tenant_locked(tenant) as runtime:
                pfds = self._active_pfds(runtime)
                report = runtime.session.detect(pfds, min_evidence=min_evidence)
                return _detection_doc(report, runtime, kind="detect")

    def validate(self, tenant: str) -> dict:
        with self._timed("validate"):
            with self._tenant_locked(tenant) as runtime:
                pfds = self._active_pfds(runtime)
                report = runtime.session.validate(pfds)
                return _validation_doc(report, runtime)

    def repair(self, tenant: str, min_evidence: int = 1) -> dict:
        """Detect + repair on a *copy*; the tenant's stored table is not
        modified (repairs are suggestions until the tenant re-loads)."""
        with self._timed("repair"):
            with self._tenant_locked(tenant) as runtime:
                pfds = self._active_pfds(runtime)
                result = runtime.session.repair(pfds, min_evidence=min_evidence)
                return _repair_doc(result, runtime)

    def ingest(
        self,
        tenant: str,
        rows: Optional[Sequence[Sequence[str]]] = None,
        csv_text: Optional[str] = None,
        min_evidence: int = 1,
    ) -> dict:
        """Append a batch (delta-maintaining the engine caches) and report
        only the errors the batch introduced."""
        with self._timed("ingest"):
            batch, batch_columns = self._parse_batch(rows, csv_text)
            with self._tenant_locked(tenant, write=True) as runtime:
                session = runtime.session
                columns = session.relation.attribute_names
                if batch_columns is not None and tuple(batch_columns) != columns:
                    raise ServiceError(
                        f"ingest columns {list(batch_columns)} do not match "
                        f"table columns {list(columns)} of tenant {tenant!r}"
                    )
                width = len(columns)
                for row in batch:
                    if len(row) != width:
                        raise ServiceError(
                            f"ingest row {row!r} has {len(row)} fields, "
                            f"table {runtime.name!r} has {width} columns"
                        )
                pfds = self._active_pfds(runtime)
                rows_before = session.relation.row_count
                appended = session.append(batch)
                if len(appended):
                    # Durable mirror of the in-memory delta append.
                    self.registry.append_data(tenant, batch)
                    report = session.detect_new(pfds, min_evidence=min_evidence)
                else:
                    report = DetectionReport(
                        relation_name=session.relation.name, errors=[], violations=[]
                    )
                doc = _detection_doc(report, runtime, kind="ingest")
                doc["rows_before"] = rows_before
                doc["rows_appended"] = len(appended)
                doc["appended_start"] = appended.start if len(appended) else None
                return doc

    def update(self, tenant: str, document: dict, min_evidence: int = 1) -> dict:
        """Apply a mutation document (cells / delete / rows / ops) and report
        only the errors around the touched rows.

        The document is the shared wire form of
        :func:`~repro.dataset.mutations.batch_from_document` — the same
        schema the CLI ``update`` subcommand reads from its ops file.  The
        engine caches are patched in place and detection is scoped to the
        changed rows (:meth:`CleaningSession.detect_changed`); the mutated
        table is durably mirrored into the registry.
        """
        try:
            batch = batch_from_document(document)
        except ReproError as error:
            raise ServiceError(str(error))
        return self._mutate(tenant, batch, kind="update", min_evidence=min_evidence)

    def delete_rows(self, tenant: str, row_ids: Sequence[int], min_evidence: int = 1) -> dict:
        """Tombstone rows (cells blank, ids stay stable) and report only the
        errors around the touched classes — same report document as
        :meth:`update`."""
        if not isinstance(row_ids, (list, tuple)) or not row_ids:
            raise ServiceError("'rows' must be a non-empty list of row ids")
        try:
            batch = MutationBatch.deletes(row_ids)
        except (ReproError, TypeError, ValueError):
            raise ServiceError(f"'rows' must be a list of integer row ids, got {row_ids!r}")
        return self._mutate(tenant, batch, kind="delete", min_evidence=min_evidence)

    def _mutate(self, tenant: str, batch: MutationBatch, kind: str, min_evidence: int) -> dict:
        """The shared update/delete engine: apply, mirror, scoped detect.

        Emits the same delta-report document shape as ``ingest`` —
        ``_detection_doc`` plus ``rows_before`` and the mutation counters —
        so every write endpoint reports through one schema.
        """
        with self._timed(kind):
            with self._tenant_locked(tenant, write=True) as runtime:
                session = runtime.session
                pfds = self._active_pfds(runtime)
                rows_before = session.relation.row_count
                try:
                    result = session.apply(batch)
                except ReproError as error:
                    raise ServiceError(str(error))
                if result:
                    # Durable mirror: updates touch arbitrary rows, so the
                    # registry data file is atomically rewritten (tombstoned
                    # rows persist as blank rows, keeping ids stable across
                    # rehydration).
                    self.registry.save_data(tenant, session.relation)
                    report = session.detect_changed(pfds, min_evidence=min_evidence)
                else:
                    report = DetectionReport(
                        relation_name=session.relation.name, errors=[], violations=[]
                    )
                doc = _detection_doc(report, runtime, kind=kind)
                doc["rows_before"] = rows_before
                doc["rows_updated"] = len(result.updated_rows)
                doc["rows_deleted"] = len(result.deleted_rows)
                doc["rows_appended"] = len(result.appended)
                doc["changed_rows"] = list(result.changed_rows)
                return doc

    def _parse_batch(
        self, rows, csv_text
    ) -> tuple[list[Sequence[str]], Optional[Sequence[str]]]:
        """The batch rows, plus the batch's own column names when it came as
        CSV text (with header, same as ``pfd-discover ingest`` batch files)
        — checked against the tenant's schema under the write lock."""
        if rows is not None:
            if not isinstance(rows, (list, tuple)):
                raise ServiceError("'rows' must be a list of rows")
            return [list(map(str, row)) for row in rows], None
        if csv_text is not None:
            try:
                parsed = read_csv(io.StringIO(csv_text), name="batch")
            except ReproError as error:
                raise ServiceError(f"could not parse ingest CSV: {error}")
            return [list(row) for row in parsed.iter_rows()], parsed.attribute_names
        raise ServiceError("ingest needs either 'rows' or 'csv' text")

    # -- tenants / observability ---------------------------------------------

    def list_tenants(self) -> dict:
        live = set(self.manager.live_tenants())
        tenants = []
        for name in self.registry.tenants():
            tenants.append(
                {
                    "tenant": name,
                    "live": name in live,
                    "has_constraints": self.registry.has_constraints(name),
                    "has_data": self.registry.has_data(name),
                }
            )
        return {"tenants": tenants, "live": sorted(live)}

    def tenant_info(self, tenant: str) -> dict:
        self.registry.require_tenant(tenant)
        runtime = self.manager.peek(tenant)
        pfds, metadata = self.registry.load_constraints(tenant)
        doc = {
            "tenant": tenant,
            "live": runtime is not None,
            "constraints": len(pfds) if pfds is not None else 0,
            "constraint_metadata": metadata,
            "has_data": self.registry.has_data(tenant),
        }
        if runtime is not None:
            doc["rows"] = runtime.session.relation.row_count
            doc["requests"] = runtime.requests
        return doc

    def drop_tenant(self, tenant: str) -> dict:
        # Evict + delete under the tenant's write lock so an in-flight
        # request either completes fully before the drop, or wakes up on a
        # stale runtime, retries, and gets a clean 404 — never half-applied
        # state (an append racing the registry rmtree, say).
        while True:
            runtime = self.manager.peek(tenant)
            if runtime is None:
                break
            runtime.lock.acquire_write()
            try:
                if self.manager.peek(tenant) is not runtime:
                    continue  # replaced/evicted while we queued; re-peek
                self.manager.evict(tenant)
                existed = self.registry.delete(tenant)
                return {"tenant": tenant, "deleted": existed}
            finally:
                runtime.lock.release_write()
        existed = self.registry.delete(tenant)
        return {"tenant": tenant, "deleted": existed}

    def stats(self) -> dict:
        """Service counters + per-live-tenant ``SessionStats``."""
        manager_stats = self.manager.stats()
        with self._counter_lock:
            endpoints = {
                name: reservoir.percentiles()
                for name, reservoir in sorted(self._latencies.items())
            }
        sessions = {}
        for name in manager_stats.live_tenants:
            runtime = self.manager.peek(name)
            if runtime is None:  # evicted between the snapshot and now
                continue
            with runtime.lock.read_locked():
                doc = runtime.session.stats().to_json_dict()
            doc["requests"] = runtime.requests
            doc["constraints"] = (
                len(runtime.pfds) if runtime.pfds is not None else 0
            )
            doc["lock"] = {
                "reads": runtime.lock.read_acquisitions,
                "writes": runtime.lock.write_acquisitions,
                "max_concurrent_readers": runtime.lock.max_concurrent_readers,
            }
            sessions[name] = doc
        return {
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "registry": str(self.registry.root),
            "registered_tenants": len(self.registry.tenants()),
            "sessions": {
                "max": manager_stats.max_sessions,
                "live": manager_stats.live,
                "live_tenants": list(manager_stats.live_tenants),
                "created": manager_stats.created,
                "evicted": manager_stats.evicted,
                "rehydrated": manager_stats.rehydrated,
                "eviction_skips": manager_stats.eviction_skips,
            },
            "endpoints": endpoints,
            "tenant_sessions": sessions,
        }

    def health(self) -> dict:
        return {"status": "ok", "version": __version__}

    def close(self) -> None:
        """Release every live session (durable state stays in the registry)."""
        self.manager.close()

    def __enter__(self) -> "CleaningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- JSON documents -----------------------------------------------------------


def _runtime_header(runtime: TenantRuntime) -> dict:
    return {
        "tenant": runtime.name,
        "rows": runtime.session.relation.row_count,
    }


def _profile_doc(profile: TableProfile, runtime: TenantRuntime) -> dict:
    doc = _runtime_header(runtime)
    doc["columns"] = [
        {
            "name": column.name,
            "role": column.role.name,
            "strategy": column.strategy,
            "distinct": column.distinct_count,
            "non_empty": column.non_empty_count,
            "usable_for_pfd": column.usable_for_pfd,
        }
        for column in profile.columns
    ]
    return doc


def _detection_doc(report: DetectionReport, runtime: TenantRuntime, kind: str) -> dict:
    doc = _runtime_header(runtime)
    doc.update(
        {
            "kind": kind,
            "backend": report.backend,
            "error_count": len(report.errors),
            "violation_count": len(report.violations),
            "clean": not report.errors,
            "errors": [
                {
                    "row": error.cell.row_id,
                    "attribute": error.cell.attribute,
                    "value": error.current_value,
                    "suggested": error.suggested_value,
                    "evidence": error.evidence_count,
                    "constraints": list(error.constraints),
                }
                for error in report.errors
            ],
        }
    )
    return doc


def _validation_doc(report: ValidationReport, runtime: TenantRuntime) -> dict:
    doc = _runtime_header(runtime)
    doc.update(
        {
            "entries": [
                {
                    "pfd": str(entry.pfd),
                    "coverage": entry.coverage,
                    "violations": entry.violation_count,
                    "holds": entry.holds,
                }
                for entry in report.entries
            ],
            "holding": report.holding_count,
            "total_violations": report.total_violations,
            "all_hold": report.all_hold,
        }
    )
    return doc


def _repair_doc(result: RepairResult, runtime: TenantRuntime) -> dict:
    doc = _runtime_header(runtime)
    remaining = result.remaining_error_cells
    doc.update(
        {
            "repairs": [
                {
                    "row": repair.cell.row_id,
                    "attribute": repair.cell.attribute,
                    "old": repair.old_value,
                    "new": repair.new_value,
                    "justification": list(repair.justification),
                }
                for repair in result.repairs
            ],
            "repair_count": len(result.repairs),
            "unresolved": len(result.unresolved),
            "remaining_errors": len(remaining) if remaining is not None else None,
            "clean": not remaining if remaining is not None else None,
        }
    )
    return doc


def session_stats_doc(session: CleaningSession) -> dict:
    """Convenience used by tests: a session's stats as the service emits."""
    return dataclasses.asdict(session.stats())
