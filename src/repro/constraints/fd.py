"""Standard functional dependencies ``X -> Y`` over entire attribute values.

FDs are both a baseline constraint language (Section 1.1 of the paper shows
why they miss pattern-level errors) and the *embedded* dependency inside
every CFD and PFD.  Violation semantics follow the textbook definition: two
tuples agreeing on ``X`` but disagreeing on some attribute of ``Y``.

Evaluation is partition-based: the LHS grouping comes from the relation's
cached stripped partitions (TANE-style — singleton groups, which can never
violate an FD, are never materialized), and RHS agreement is checked against
dictionary codes.  Repeated candidate checks over the same relation — the
FDep/CFDFinder baselines enumerate many — therefore share one grouping pass
per attribute set instead of re-hashing every row per candidate.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from ..dataset.relation import Relation
from ..exceptions import ConstraintError
from .base import CellRef, Violation


@dataclasses.dataclass(frozen=True)
class FD:
    """A functional dependency ``relation_name(lhs -> rhs)``."""

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]
    relation_name: str = "R"

    def __init__(
        self,
        lhs: Sequence[str] | str,
        rhs: Sequence[str] | str,
        relation_name: str = "R",
    ):
        lhs_tuple = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        rhs_tuple = (rhs,) if isinstance(rhs, str) else tuple(rhs)
        if not lhs_tuple or not rhs_tuple:
            raise ConstraintError("an FD needs at least one LHS and one RHS attribute")
        object.__setattr__(self, "lhs", lhs_tuple)
        object.__setattr__(self, "rhs", rhs_tuple)
        object.__setattr__(self, "relation_name", relation_name)

    # -- structure ----------------------------------------------------------

    @property
    def is_trivial(self) -> bool:
        """True when every RHS attribute already appears on the LHS."""
        return set(self.rhs) <= set(self.lhs)

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def normalized(self) -> list["FD"]:
        """Split a multi-attribute RHS into one FD per RHS attribute."""
        return [FD(self.lhs, (attr,), self.relation_name) for attr in self.rhs]

    # -- evaluation ----------------------------------------------------------

    def holds_on(self, relation: Relation) -> bool:
        """True iff the relation has no violating tuple pair.

        Checked TANE-style: every stripped LHS class must agree on every RHS
        attribute's dictionary code — cost proportional to the stripped
        classes, not the row count, and the LHS partition is shared with
        every other candidate over the same attribute set.
        """
        relation.schema.validate_attributes(self.attributes())
        partition = relation.partitions().attribute_set_partition(self.lhs)
        return all(
            partition.refines_codes(relation.dictionary(rhs_attr).codes)
            for rhs_attr in self.rhs
        )

    def violations(self, relation: Relation) -> list[Violation]:
        """All violations, one per (LHS group, disagreeing RHS attribute).

        To keep the output size manageable on dirty data, tuples in the same
        LHS group that disagree on an RHS attribute are reported as a single
        violation whose cells cover the whole group, with the minority-value
        cells marked as suspects (majority voting, as used by the error
        detection experiments of Section 5.3).  The groups are the stripped
        classes of the cached LHS partition; RHS values are bucketed through
        dictionary codes.
        """
        relation.schema.validate_attributes(self.attributes())
        partition = relation.partitions().attribute_set_partition(self.lhs)
        rhs_columns = {attr: relation.dictionary(attr) for attr in self.rhs}
        found: list[Violation] = []
        for row_ids in partition.classes:
            for rhs_attr in self.rhs:
                column = rhs_columns[rhs_attr]
                codes = column.codes
                buckets: dict[int, list[int]] = {}
                for row_id in row_ids:
                    buckets.setdefault(codes[row_id], []).append(row_id)
                if len(buckets) < 2:
                    continue
                majority_code, _ = max(
                    buckets.items(),
                    key=lambda item: (len(item[1]), column.values[item[0]]),
                )
                majority_value = column.values[majority_code]
                suspects = tuple(
                    CellRef(row_id, rhs_attr)
                    for code, ids in buckets.items()
                    if code != majority_code
                    for row_id in ids
                )
                cells = tuple(
                    CellRef(row_id, attr)
                    for row_id in row_ids
                    for attr in (*self.lhs, rhs_attr)
                )
                found.append(
                    Violation(
                        constraint_kind="FD",
                        constraint_repr=str(self),
                        cells=cells,
                        suspect_cells=suspects,
                        expected_value=majority_value,
                    )
                )
        return found

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        rhs = ", ".join(self.rhs)
        return f"{self.relation_name}([{lhs}] -> [{rhs}])"


def satisfied_fds(relation: Relation, fds: Iterable[FD]) -> list[FD]:
    """The subset of ``fds`` that hold exactly on ``relation``."""
    return [fd for fd in fds if fd.holds_on(relation)]


def violation_ratio(relation: Relation, fd: FD) -> float:
    """Fraction of tuples involved in at least one violation of ``fd``.

    This is the "approximate FD" measure used when discovering dependencies
    over dirty data: an FD with a small violation ratio is reported as
    (approximately) holding.
    """
    if relation.row_count == 0:
        return 0.0
    violating_rows: set[int] = set()
    for violation in fd.violations(relation):
        violating_rows.update(cell.row_id for cell in violation.suspect_cells)
    return len(violating_rows) / relation.row_count
