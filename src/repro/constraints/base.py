"""Shared building blocks for integrity constraints (FDs, CFDs, PFDs).

All constraint classes expose the same small surface:

* ``lhs`` / ``rhs`` — the attribute sets of the embedded dependency,
* ``holds_on(relation)`` — does the relation satisfy the constraint,
* ``violations(relation)`` — the list of :class:`Violation` objects, each of
  which points at the concrete cells involved.

A :class:`CellRef` identifies a single cell ``(row_id, attribute)``; it is the
unit of error reporting used throughout the cleaning package.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Protocol, Sequence, runtime_checkable

from ..dataset.relation import Relation


@dataclasses.dataclass(frozen=True, order=True)
class CellRef:
    """A reference to one cell of a relation."""

    row_id: int
    attribute: str

    def value(self, relation: Relation) -> str:
        """The current value of the referenced cell."""
        return relation.cell(self.row_id, self.attribute)

    def __str__(self) -> str:
        return f"t{self.row_id}[{self.attribute}]"


@dataclasses.dataclass(frozen=True)
class Violation:
    """A witnessed violation of a constraint.

    Attributes
    ----------
    constraint_kind:
        ``"FD"``, ``"CFD"`` or ``"PFD"``.
    constraint_repr:
        Human-readable form of the violated constraint (and tableau row).
    cells:
        The cells participating in the violation.  For single-tuple
        violations this is the cells of one tuple; for pair violations it is
        the four (or more) cells of both tuples, as in Example 2 of the
        paper.
    suspect_cells:
        The subset of ``cells`` the detector believes to be erroneous (for a
        constant PFD: the RHS cell of the violating tuple; for a variable
        PFD: the RHS cells holding the minority value of the group).
    expected_value:
        The repair the constraint suggests for the suspect cells, when one
        can be derived (constant RHS pattern, or the group's majority value).
    """

    constraint_kind: str
    constraint_repr: str
    cells: tuple[CellRef, ...]
    suspect_cells: tuple[CellRef, ...] = ()
    expected_value: Optional[str] = None

    def rows(self) -> tuple[int, ...]:
        """The distinct row ids touched by this violation."""
        return tuple(sorted({cell.row_id for cell in self.cells}))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cell_text = ", ".join(str(cell) for cell in self.cells)
        return f"{self.constraint_kind} violation of {self.constraint_repr} on [{cell_text}]"


@runtime_checkable
class Constraint(Protocol):
    """Structural protocol satisfied by FD, CFD and PFD."""

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def holds_on(self, relation: Relation) -> bool:  # pragma: no cover - protocol
        ...

    def violations(self, relation: Relation) -> list[Violation]:  # pragma: no cover
        ...


def embedded_dependency_key(lhs: Sequence[str], rhs: Sequence[str]) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Canonical key for an embedded dependency ``X -> Y``.

    The evaluation of the paper counts *embedded dependencies* rather than
    individual FDs/CFDs/PFDs (Section 5.1); this key is what the experiment
    harness groups by.
    """
    return (tuple(sorted(lhs)), tuple(sorted(rhs)))
