"""Classical integrity constraints: FDs and CFDs, plus the shared violation
objects used by every constraint class in the library."""

from .base import CellRef, Constraint, Violation, embedded_dependency_key
from .cfd import CFD, CFDTuple, WILDCARD as CFD_WILDCARD, constant_cfd
from .fd import FD, satisfied_fds, violation_ratio

__all__ = [
    "CellRef",
    "Constraint",
    "Violation",
    "embedded_dependency_key",
    "CFD",
    "CFDTuple",
    "CFD_WILDCARD",
    "constant_cfd",
    "FD",
    "satisfied_fds",
    "violation_ratio",
]
