"""Conditional functional dependencies (CFDs), following Fan et al. (TODS'08).

A CFD is an embedded FD ``X -> Y`` plus a *pattern tableau* whose cells are
either constants or the unnamed wildcard ``_``.  CFDs are both a baseline in
the paper's evaluation (CFDFinder) and a special case of PFDs (every CFD is a
PFD whose patterns are whole-value constants or wildcards), which is what the
complexity lower bounds in Section 3 build on.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Mapping, Sequence

from ..dataset.relation import Relation
from ..exceptions import ConstraintError, TableauError
from .base import CellRef, Violation

#: The unnamed wildcard of CFD tableaux.
WILDCARD = "_"


@dataclasses.dataclass(frozen=True)
class CFDTuple:
    """One row of a CFD tableau: attribute -> constant or ``_``."""

    cells: tuple[tuple[str, str], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "CFDTuple":
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict[str, str]:
        return dict(self.cells)

    def value(self, attribute: str) -> str:
        for name, value in self.cells:
            if name == attribute:
                return value
        raise TableauError(f"tableau tuple has no cell for attribute {attribute!r}")

    def is_constant_on(self, attributes: Sequence[str]) -> bool:
        return all(self.value(attr) != WILDCARD for attr in attributes)

    def matches_row(self, relation: Relation, row_id: int, attributes: Sequence[str]) -> bool:
        """True if the data tuple agrees with every constant cell on ``attributes``."""
        for attr in attributes:
            expected = self.value(attr)
            if expected != WILDCARD and relation.cell(row_id, attr) != expected:
                return False
        return True

    def __str__(self) -> str:
        return "(" + ", ".join(f"{name}={value}" for name, value in self.cells) + ")"


@dataclasses.dataclass(frozen=True)
class CFD:
    """A conditional functional dependency ``R(X -> Y, Tp)``."""

    lhs: tuple[str, ...]
    rhs: tuple[str, ...]
    tableau: tuple[CFDTuple, ...]
    relation_name: str = "R"

    def __init__(
        self,
        lhs: Sequence[str] | str,
        rhs: Sequence[str] | str,
        tableau: Sequence[CFDTuple | Mapping[str, str]],
        relation_name: str = "R",
    ):
        lhs_tuple = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        rhs_tuple = (rhs,) if isinstance(rhs, str) else tuple(rhs)
        if not lhs_tuple or not rhs_tuple:
            raise ConstraintError("a CFD needs at least one LHS and one RHS attribute")
        rows: list[CFDTuple] = []
        for row in tableau:
            if isinstance(row, Mapping):
                row = CFDTuple.from_mapping(row)
            for attribute in (*lhs_tuple, *rhs_tuple):
                row.value(attribute)  # raises TableauError if missing
            rows.append(row)
        if not rows:
            raise ConstraintError("a CFD needs at least one tableau row")
        object.__setattr__(self, "lhs", lhs_tuple)
        object.__setattr__(self, "rhs", rhs_tuple)
        object.__setattr__(self, "tableau", tuple(rows))
        object.__setattr__(self, "relation_name", relation_name)

    # -- structure ----------------------------------------------------------

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    @property
    def is_constant(self) -> bool:
        """True if every tableau row is constant on both sides."""
        return all(
            row.is_constant_on(self.lhs) and row.is_constant_on(self.rhs)
            for row in self.tableau
        )

    # -- evaluation ----------------------------------------------------------

    def holds_on(self, relation: Relation) -> bool:
        return not self.violations(relation)

    def violations(self, relation: Relation) -> list[Violation]:
        """Violations of every tableau row.

        Constant rows are checked tuple-by-tuple; rows with wildcards use the
        two-tuple semantics (agree on X and on the constants, disagree on Y).
        """
        relation.schema.validate_attributes(self.attributes())
        found: list[Violation] = []
        for row in self.tableau:
            if row.is_constant_on(self.lhs) and row.is_constant_on(self.rhs):
                found.extend(self._constant_row_violations(relation, row))
            else:
                found.extend(self._variable_row_violations(relation, row))
        return found

    def _constant_row_violations(self, relation: Relation, row: CFDTuple) -> list[Violation]:
        found: list[Violation] = []
        for row_id in range(relation.row_count):
            if not row.matches_row(relation, row_id, self.lhs):
                continue
            for rhs_attr in self.rhs:
                expected = row.value(rhs_attr)
                actual = relation.cell(row_id, rhs_attr)
                if actual != expected:
                    cells = tuple(
                        CellRef(row_id, attr) for attr in (*self.lhs, rhs_attr)
                    )
                    found.append(
                        Violation(
                            constraint_kind="CFD",
                            constraint_repr=f"{self} @ {row}",
                            cells=cells,
                            suspect_cells=(CellRef(row_id, rhs_attr),),
                            expected_value=expected,
                        )
                    )
        return found

    def _variable_row_violations(self, relation: Relation, row: CFDTuple) -> list[Violation]:
        # Group the tuples that match the constant LHS cells by their values
        # on the wildcard LHS attributes; within a group, the RHS must agree
        # with the tableau constants and be identical on wildcard RHS cells.
        groups: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for row_id in range(relation.row_count):
            if not row.matches_row(relation, row_id, self.lhs):
                continue
            key = tuple(relation.cell(row_id, attr) for attr in self.lhs)
            if any(not part for part in key):
                continue
            groups[key].append(row_id)
        found: list[Violation] = []
        for key, row_ids in groups.items():
            for rhs_attr in self.rhs:
                expected = row.value(rhs_attr)
                values: dict[str, list[int]] = defaultdict(list)
                for row_id in row_ids:
                    values[relation.cell(row_id, rhs_attr)].append(row_id)
                if expected != WILDCARD:
                    offending = {
                        value: ids for value, ids in values.items() if value != expected
                    }
                    if not offending:
                        continue
                    majority = expected
                elif len(values) >= 2 and len(row_ids) >= 2:
                    majority, _ = max(
                        values.items(), key=lambda item: (len(item[1]), item[0])
                    )
                    offending = {
                        value: ids for value, ids in values.items() if value != majority
                    }
                else:
                    continue
                suspects = tuple(
                    CellRef(row_id, rhs_attr)
                    for ids in offending.values()
                    for row_id in ids
                )
                cells = tuple(
                    CellRef(row_id, attr)
                    for row_id in row_ids
                    for attr in (*self.lhs, rhs_attr)
                )
                found.append(
                    Violation(
                        constraint_kind="CFD",
                        constraint_repr=f"{self} @ {row}",
                        cells=cells,
                        suspect_cells=suspects,
                        expected_value=majority,
                    )
                )
        return found

    # -- display -------------------------------------------------------------

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        rhs = ", ".join(self.rhs)
        return f"{self.relation_name}([{lhs}] -> [{rhs}], |Tp|={len(self.tableau)})"


def constant_cfd(
    lhs_values: Mapping[str, str],
    rhs_values: Mapping[str, str],
    relation_name: str = "R",
) -> CFD:
    """Build a single-row constant CFD, e.g. ``([zip=90001] -> [city=Los Angeles])``."""
    tableau_row = CFDTuple.from_mapping({**lhs_values, **rhs_values})
    return CFD(
        tuple(lhs_values.keys()),
        tuple(rhs_values.keys()),
        [tableau_row],
        relation_name=relation_name,
    )
