"""Exception hierarchy for the repro (PFD) library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PatternError(ReproError):
    """Base class for errors in the pattern sub-system."""


class PatternSyntaxError(PatternError):
    """A pattern string could not be parsed.

    Attributes
    ----------
    pattern:
        The offending pattern string.
    position:
        Zero-based index into ``pattern`` where parsing failed.
    """

    def __init__(self, message: str, pattern: str = "", position: int = -1):
        super().__init__(message)
        self.pattern = pattern
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.pattern:
            return f"{base} (pattern={self.pattern!r}, position={self.position})"
        return base


class PatternMatchError(PatternError):
    """A pattern match ran into a resource limit (e.g. backtracking budget)."""


class SchemaError(ReproError):
    """A relation or constraint referenced an attribute that does not exist,
    or the shape of the data does not agree with the declared schema."""


class ConstraintError(ReproError):
    """A constraint (FD / CFD / PFD) is malformed."""


class TableauError(ConstraintError):
    """A pattern tableau row does not agree with its constraint's schema."""


class InferenceError(ReproError):
    """An axiom application or closure computation received invalid input."""


class InconsistentPFDSetError(InferenceError):
    """Raised when a set of PFDs is detected to be inconsistent and an
    operation that requires consistency was requested."""


class DiscoveryError(ReproError):
    """PFD/FD/CFD discovery was configured or invoked incorrectly."""


class CleaningError(ReproError):
    """Error detection / repair was configured or invoked incorrectly."""


class DataGenerationError(ReproError):
    """A synthetic dataset generator received invalid parameters."""


class ServiceError(ReproError):
    """A cleaning-service request failed (bad tenant, missing state, …).

    Attributes
    ----------
    status:
        The HTTP status code the daemon maps this error to (default 400).
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class UnknownTenantError(ServiceError):
    """The request named a tenant the registry has never seen (HTTP 404)."""

    def __init__(self, message: str):
        super().__init__(message, status=404)
