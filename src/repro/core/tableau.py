"""Pattern tableaux for PFDs.

A PFD ``R(X -> Y, Tp)`` carries a tableau ``Tp``; each tableau tuple assigns,
to every attribute in ``X`` and ``Y``, either

* a *constrained pattern* (:class:`~repro.patterns.ast.Pattern`), or
* the unnamed wildcard ``⊥``.

The wildcard imposes no format restriction and — exactly like the ``_``
wildcard of CFDs — requires plain equality of the whole value when two tuples
are compared.  Internally it is therefore treated as the constrained pattern
``{{\\A*}}`` (match anything, constrain everything), which makes the
satisfaction check uniform.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..exceptions import TableauError
from ..patterns.ast import ConstrainedGroup, Pattern, Repeat, ClassAtom
from ..patterns.alphabet import CharClass
from ..patterns.containment import is_restriction_of
from ..patterns.matcher import CompiledPattern, compile_pattern
from ..patterns.parser import parse_pattern


class Wildcard:
    """The unnamed variable ``⊥`` of PFD tableaux (singleton)."""

    _instance: Optional["Wildcard"] = None

    def __new__(cls) -> "Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __str__(self) -> str:
        return "⊥"


#: The singleton wildcard value.
WILDCARD = Wildcard()

#: A tableau cell: a pattern, the wildcard, or (for convenience in literals)
#: a pattern string that will be parsed.
CellSpec = Union[Pattern, Wildcard, str]


def _wildcard_pattern() -> Pattern:
    """The pattern ``{{\\A*}}`` that encodes the wildcard's semantics."""
    star = Repeat(ClassAtom(CharClass.ANY), 0, None)
    return Pattern((ConstrainedGroup((star,)),))


_WILDCARD_PATTERN = _wildcard_pattern()


def effective_pattern(cell: Union[Pattern, Wildcard]) -> Pattern:
    """The pattern that implements a tableau cell's semantics.

    The wildcard ``⊥`` behaves exactly like ``{{\\A*}}``: it matches every
    value and, when two tuples are compared, requires their whole values to
    be identical.
    """
    if isinstance(cell, Wildcard):
        return _WILDCARD_PATTERN
    return cell


def cell_is_restriction(
    specific: Union[Pattern, Wildcard], general: Union[Pattern, Wildcard]
) -> bool:
    """The restriction relation ``specific ⊑ general`` lifted to tableau cells.

    Both cells are mapped to their effective patterns (⊥ becomes
    ``{{\\A*}}``) and compared with
    :func:`repro.patterns.containment.is_restriction_of`.
    """
    return is_restriction_of(effective_pattern(specific), effective_pattern(general))


def resolve_cell(cell: CellSpec) -> Union[Pattern, Wildcard]:
    """Normalize a cell specification: parse strings, keep patterns/wildcard."""
    if isinstance(cell, Wildcard):
        return WILDCARD
    if isinstance(cell, Pattern):
        return cell
    if isinstance(cell, str):
        if cell in ("⊥", "_", ""):
            return WILDCARD
        return parse_pattern(cell)
    raise TableauError(f"invalid tableau cell {cell!r}")


@dataclasses.dataclass(frozen=True)
class PatternTuple:
    """One row of a pattern tableau.

    ``cells`` maps attribute names to patterns or the wildcard.  The mapping
    is stored as a sorted tuple so the row is hashable.
    """

    cells: tuple[tuple[str, Union[Pattern, Wildcard]], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, CellSpec]) -> "PatternTuple":
        resolved = {name: resolve_cell(cell) for name, cell in mapping.items()}
        return cls(tuple(sorted(resolved.items(), key=lambda item: item[0])))

    # -- access --------------------------------------------------------------

    def attributes(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.cells)

    def as_dict(self) -> dict[str, Union[Pattern, Wildcard]]:
        return dict(self.cells)

    def cell(self, attribute: str) -> Union[Pattern, Wildcard]:
        for name, value in self.cells:
            if name == attribute:
                return value
        raise TableauError(f"tableau row has no cell for attribute {attribute!r}")

    def is_wildcard(self, attribute: str) -> bool:
        return isinstance(self.cell(attribute), Wildcard)

    def pattern(self, attribute: str) -> Pattern:
        """The effective pattern of a cell (wildcard becomes ``{{\\A*}}``)."""
        value = self.cell(attribute)
        if isinstance(value, Wildcard):
            return _WILDCARD_PATTERN
        return value

    def compiled(self, attribute: str) -> CompiledPattern:
        return compile_pattern(self.pattern(attribute))

    # -- classification ------------------------------------------------------

    def constrains_constant(self, attribute: str) -> bool:
        """True if the cell's constrained part is a constant string.

        Cells whose constrained part is constant can be checked on a single
        tuple (Section 2.2): matching the pattern already fixes the
        constrained value, so no second tuple is needed to witness equality.
        """
        value = self.cell(attribute)
        if isinstance(value, Wildcard):
            return False
        group = value.constrained_subpattern()
        if group is None:
            # No constrained part: matching alone is the whole requirement.
            return True
        return group.is_constant()

    def is_constant_row(self, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
        """True if this row can be applied to single tuples: every LHS cell
        has a constant constrained part and every RHS cell is a constant
        pattern (so the expected value is determined)."""
        if not all(self.constrains_constant(attr) for attr in lhs):
            return False
        for attr in rhs:
            value = self.cell(attr)
            if isinstance(value, Wildcard) or not value.is_constant():
                return False
        return True

    # -- serialization ---------------------------------------------------------

    def to_json_dict(self) -> dict[str, str]:
        """JSON-serializable form: attribute → pattern string (``"⊥"`` for
        the wildcard).  Inverse of :meth:`from_json_dict`."""
        return {
            name: "⊥" if isinstance(value, Wildcard) else value.to_pattern_string()
            for name, value in self.cells
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, str]) -> "PatternTuple":
        """Rebuild a row from :meth:`to_json_dict` output.

        Unlike the lenient :func:`resolve_cell` (which also accepts ``"_"``
        and ``""`` as wildcard aliases for hand-written literals), only the
        exact ``"⊥"`` marker deserializes to the wildcard here — a stored
        pattern string such as the literal ``"_"`` must round-trip to the
        pattern that matches only ``"_"``, not to match-anything.
        """
        resolved: dict[str, Union[Pattern, Wildcard]] = {}
        for name, text in data.items():
            if text == "⊥":
                resolved[name] = WILDCARD
            else:
                resolved[name] = parse_pattern(text)
        return cls(tuple(sorted(resolved.items(), key=lambda item: item[0])))

    # -- display ---------------------------------------------------------------

    def render(self, lhs: Sequence[str], rhs: Sequence[str]) -> str:
        """Render in the paper's ``(lhs-patterns || rhs-patterns)`` style."""
        left = ", ".join(self._render_cell(attr) for attr in lhs)
        right = ", ".join(self._render_cell(attr) for attr in rhs)
        return f"({left} || {right})"

    def _render_cell(self, attribute: str) -> str:
        value = self.cell(attribute)
        if isinstance(value, Wildcard):
            return f"{attribute}=⊥"
        return f"{attribute}={value.to_pattern_string()}"

    def __str__(self) -> str:
        return "(" + ", ".join(self._render_cell(name) for name, _ in self.cells) + ")"


class PatternTableau:
    """An ordered collection of :class:`PatternTuple` rows."""

    def __init__(self, rows: Iterable[Union[PatternTuple, Mapping[str, CellSpec]]] = ()):
        resolved: list[PatternTuple] = []
        for row in rows:
            if isinstance(row, PatternTuple):
                resolved.append(row)
            else:
                resolved.append(PatternTuple.from_mapping(row))
        self._rows: list[PatternTuple] = resolved

    # -- container behaviour ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[PatternTuple]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> PatternTuple:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTableau):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(tuple(self._rows))

    @property
    def rows(self) -> tuple[PatternTuple, ...]:
        return tuple(self._rows)

    # -- mutation ----------------------------------------------------------------

    def add(self, row: Union[PatternTuple, Mapping[str, CellSpec]]) -> None:
        """Append a row (deduplicated: identical rows are added only once)."""
        if not isinstance(row, PatternTuple):
            row = PatternTuple.from_mapping(row)
        if row not in self._rows:
            self._rows.append(row)

    def extend(self, rows: Iterable[Union[PatternTuple, Mapping[str, CellSpec]]]) -> None:
        for row in rows:
            self.add(row)

    # -- serialization -----------------------------------------------------------

    def to_json_rows(self) -> list[dict[str, str]]:
        """JSON-serializable form: one attribute → pattern-string dict per
        row.  Inverse of :meth:`from_json_rows`."""
        return [row.to_json_dict() for row in self._rows]

    @classmethod
    def from_json_rows(cls, rows: Iterable[Mapping[str, str]]) -> "PatternTableau":
        """Rebuild a tableau from :meth:`to_json_rows` output."""
        return cls(PatternTuple.from_json_dict(row) for row in rows)

    # -- validation ---------------------------------------------------------------

    def validate(self, lhs: Sequence[str], rhs: Sequence[str]) -> None:
        """Ensure every row covers every attribute of the embedded FD."""
        required = (*lhs, *rhs)
        for row in self._rows:
            for attribute in required:
                row.cell(attribute)  # raises TableauError when missing

    # -- display -------------------------------------------------------------------

    def render(self, lhs: Sequence[str], rhs: Sequence[str]) -> str:
        return "\n".join(row.render(lhs, rhs) for row in self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PatternTableau(rows={len(self._rows)})"
