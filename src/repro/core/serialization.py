"""Persisting PFD sets as JSON.

Discovery is the expensive step of the pipeline; detection and repair are
often re-run on fresh data with the *same* constraints.  These helpers
round-trip lists of :class:`~repro.core.pfd.PFD` objects through a small,
versioned JSON document so the CLI (``pfd-discover discover --save`` /
``detect --load``) and library users can persist discovered constraints and
reuse them later.

Tableau cells are stored in the textual pattern syntax (``{{900}}\\D{2}``,
``"⊥"`` for the wildcard), which keeps the files human-readable and makes the
round trip exact: parsing the pattern string rebuilds the identical AST.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..exceptions import ConstraintError, PatternError
from .pfd import PFD

#: Format marker written into every document; bumped on breaking changes.
FORMAT = "pfd-set/1"


def pfds_to_json(
    pfds: Sequence[PFD],
    indent: int = 2,
    metadata: Optional[Mapping[str, object]] = None,
) -> str:
    """Serialize a list of PFDs to a JSON document string.

    ``metadata`` is an optional JSON-serializable mapping stored alongside
    the constraints (the cleaning service's tenant registry records the
    discovery config, row count, and timestamps there).  Documents without
    it are unchanged, and old readers ignore the key.
    """
    document: dict[str, object] = {
        "format": FORMAT,
        "pfds": [pfd.to_json_dict() for pfd in pfds],
    }
    if metadata:
        document["metadata"] = dict(metadata)
    return json.dumps(document, ensure_ascii=False, indent=indent)


def pfds_from_json(text: str) -> list[PFD]:
    """Deserialize a list of PFDs from a :func:`pfds_to_json` document.

    Raises
    ------
    ConstraintError
        When the document is not valid JSON of the expected shape, the
        format marker is unsupported, or an entry is malformed.
    """
    pfds, _ = pfds_from_json_document(text)
    return pfds


def pfds_from_json_document(text: str) -> tuple[list[PFD], dict]:
    """Like :func:`pfds_from_json`, but also returns the document metadata.

    The metadata is ``{}`` for documents written without one (including the
    lenient bare-list form).
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConstraintError(f"PFD document is not valid JSON: {error}") from error
    metadata: dict = {}
    if isinstance(document, list):
        # Bare list of PFD dicts (lenient: what a user would write by hand).
        entries: Iterable = document
    elif isinstance(document, dict):
        if document.get("format") != FORMAT:
            raise ConstraintError(
                f"unsupported PFD document format {document.get('format')!r} "
                f"(expected {FORMAT!r})"
            )
        entries = document.get("pfds")
        if not isinstance(entries, list):
            raise ConstraintError("PFD document has no 'pfds' list")
        raw_metadata = document.get("metadata", {})
        if raw_metadata and not isinstance(raw_metadata, dict):
            raise ConstraintError("PFD document 'metadata' must be an object")
        metadata = dict(raw_metadata) if raw_metadata else {}
    else:
        raise ConstraintError(
            f"PFD document must be a JSON object or list, "
            f"got {type(document).__name__}"
        )
    try:
        return [PFD.from_json_dict(entry) for entry in entries], metadata
    except ConstraintError:
        raise
    except (KeyError, TypeError, AttributeError, PatternError) as error:
        raise ConstraintError(f"malformed PFD entry: {error}") from error


def save_pfds(
    path: Union[str, Path],
    pfds: Sequence[PFD],
    metadata: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write a PFD set (plus optional metadata) to ``path``; returns it."""
    path = Path(path)
    path.write_text(pfds_to_json(pfds, metadata=metadata), encoding="utf-8")
    return path


def load_pfds(path: Union[str, Path]) -> list[PFD]:
    """Read a PFD set previously written by :func:`save_pfds`."""
    return pfds_from_json(Path(path).read_text(encoding="utf-8"))


def load_pfds_document(path: Union[str, Path]) -> tuple[list[PFD], dict]:
    """Read a PFD set *and* its metadata (``{}`` when none was saved)."""
    return pfds_from_json_document(Path(path).read_text(encoding="utf-8"))
