"""Pattern functional dependencies — the paper's central object.

A PFD ``ψ : R(X -> Y, Tp)`` consists of

* an embedded FD ``X -> Y`` over the schema of ``R``, and
* a pattern tableau ``Tp`` whose cells are constrained patterns or the
  wildcard ``⊥`` (see :mod:`repro.core.tableau`).

Satisfaction (Section 2.2): for every tableau row ``tp``, whenever two data
tuples both match every LHS pattern and are pairwise equivalent on the
constrained LHS parts, they must also match every RHS pattern and be
equivalent on the constrained RHS parts.  Rows whose constrained parts are
constants additionally apply to *single* tuples: any tuple matching the LHS
must match the RHS.

The implementation groups data tuples by their extracted constrained LHS
values, which makes the check linear in the table size per tableau row
(instead of quadratic over tuple pairs).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..constraints.base import CellRef, Violation, embedded_dependency_key
from ..constraints.fd import FD
from ..dataset.relation import Relation
from ..exceptions import ConstraintError
from ..patterns.ast import Pattern
from .tableau import CellSpec, PatternTableau, PatternTuple, Wildcard


@dataclasses.dataclass(frozen=True)
class RowStatistics:
    """Support / violation statistics of one tableau row on one relation."""

    row: PatternTuple
    support: int
    violating_tuples: int

    @property
    def violation_ratio(self) -> float:
        if self.support == 0:
            return 0.0
        return self.violating_tuples / self.support


class PFD:
    """A pattern functional dependency ``R(X -> Y, Tp)``.

    Parameters
    ----------
    lhs / rhs:
        Attribute names (a single string is promoted to a one-element tuple).
    tableau:
        A :class:`PatternTableau`, or an iterable of row mappings
        ``{attribute: pattern-or-"⊥"}`` where patterns may be given as
        textual pattern strings.
    relation_name:
        Name used when printing the PFD (``Zip([zip] -> [city], ...)``).
    """

    def __init__(
        self,
        lhs: Union[Sequence[str], str],
        rhs: Union[Sequence[str], str],
        tableau: Union[PatternTableau, Iterable[Mapping[str, CellSpec]]],
        relation_name: str = "R",
    ):
        self.lhs: tuple[str, ...] = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        self.rhs: tuple[str, ...] = (rhs,) if isinstance(rhs, str) else tuple(rhs)
        if not self.lhs or not self.rhs:
            raise ConstraintError("a PFD needs at least one LHS and one RHS attribute")
        if not isinstance(tableau, PatternTableau):
            tableau = PatternTableau(tableau)
        if len(tableau) == 0:
            raise ConstraintError("a PFD needs at least one tableau row")
        tableau.validate(self.lhs, self.rhs)
        self.tableau = tableau
        self.relation_name = relation_name

    # -- structure -----------------------------------------------------------

    @property
    def embedded_fd(self) -> FD:
        """The embedded (standard) FD ``X -> Y``."""
        return FD(self.lhs, self.rhs, self.relation_name)

    @property
    def is_trivial(self) -> bool:
        """Trivial PFDs (RHS contained in LHS) are ignored by discovery."""
        return set(self.rhs) <= set(self.lhs)

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def dependency_key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Canonical key of the embedded dependency (used by the evaluation,
        which counts embedded dependencies rather than individual PFDs)."""
        return embedded_dependency_key(self.lhs, self.rhs)

    def normalized(self) -> list["PFD"]:
        """Normal form: one PFD per RHS attribute (Section 2.2)."""
        if len(self.rhs) == 1:
            return [self]
        result = []
        for attr in self.rhs:
            rows = []
            for row in self.tableau:
                cells = {a: row.cell(a) for a in (*self.lhs, attr)}
                rows.append(PatternTuple.from_mapping(cells))
            result.append(PFD(self.lhs, (attr,), PatternTableau(rows), self.relation_name))
        return result

    def constant_rows(self) -> list[PatternTuple]:
        """Rows applicable to single tuples (constant constrained parts)."""
        return [row for row in self.tableau if row.is_constant_row(self.lhs, self.rhs)]

    def variable_rows(self) -> list[PatternTuple]:
        """Rows that require a pair of tuples to witness a violation."""
        return [row for row in self.tableau if not row.is_constant_row(self.lhs, self.rhs)]

    @property
    def is_constant(self) -> bool:
        return not self.variable_rows()

    @property
    def is_variable(self) -> bool:
        return bool(self.variable_rows())

    # -- matching helpers ------------------------------------------------------

    def _row_lhs_key(
        self, relation: Relation, row: PatternTuple, row_id: int
    ) -> Optional[tuple[str, ...]]:
        """The extracted constrained LHS values of tuple ``row_id`` for a
        tableau row, or ``None`` if the tuple does not match the LHS."""
        key: list[str] = []
        for attribute in self.lhs:
            value = relation.cell(row_id, attribute)
            if not value:
                return None
            result = row.compiled(attribute).match(value)
            if not result.matched:
                return None
            # Cells without a constrained part only require matching; they
            # contribute a constant component to the key.
            key.append(result.constrained_value if result.constrained_value is not None else "")
        return tuple(key)

    def matching_rows(self, relation: Relation, row: PatternTuple) -> list[int]:
        """Tuple ids matching every LHS pattern of ``row`` (its support set)."""
        matching = []
        for row_id in range(relation.row_count):
            if self._row_lhs_key(relation, row, row_id) is not None:
                matching.append(row_id)
        return matching

    # -- satisfaction / violations ---------------------------------------------

    def holds_on(self, relation: Relation) -> bool:
        """``T |= ψ``: no tableau row is violated."""
        return not self.violations(relation)

    def violations(self, relation: Relation) -> list[Violation]:
        """All violations of the PFD on ``relation``.

        Constant rows yield one violation per offending tuple; variable rows
        yield one violation per offending group (with the minority cells
        marked as suspects, as used by the error-detection experiments).
        """
        relation.schema.validate_attributes(self.attributes())
        found: list[Violation] = []
        for row in self.tableau:
            if row.is_constant_row(self.lhs, self.rhs):
                found.extend(self._constant_row_violations(relation, row))
            else:
                found.extend(self._variable_row_violations(relation, row))
        return found

    def _constant_row_violations(
        self, relation: Relation, row: PatternTuple
    ) -> list[Violation]:
        found: list[Violation] = []
        rhs_expected = {
            attribute: row.pattern(attribute).constant_value() for attribute in self.rhs
        }
        for row_id in range(relation.row_count):
            if self._row_lhs_key(relation, row, row_id) is None:
                continue
            for attribute in self.rhs:
                actual = relation.cell(row_id, attribute)
                expected = rhs_expected[attribute]
                if actual == expected:
                    continue
                cells = tuple(
                    CellRef(row_id, attr) for attr in (*self.lhs, attribute)
                )
                found.append(
                    Violation(
                        constraint_kind="PFD",
                        constraint_repr=f"{self} @ {row.render(self.lhs, self.rhs)}",
                        cells=cells,
                        suspect_cells=(CellRef(row_id, attribute),),
                        expected_value=expected,
                    )
                )
        return found

    def _variable_row_violations(
        self, relation: Relation, row: PatternTuple
    ) -> list[Violation]:
        groups: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for row_id in range(relation.row_count):
            key = self._row_lhs_key(relation, row, row_id)
            if key is not None:
                groups[key].append(row_id)
        found: list[Violation] = []
        for key, row_ids in groups.items():
            if len(row_ids) < 2:
                continue
            for attribute in self.rhs:
                compiled = row.compiled(attribute)
                # Partition the group's tuples by their constrained RHS value;
                # tuples that do not even match the RHS pattern get a bucket
                # of their own keyed by the full value.
                buckets: dict[tuple[bool, str], list[int]] = defaultdict(list)
                for row_id in row_ids:
                    value = relation.cell(row_id, attribute)
                    result = compiled.match(value)
                    if result.matched:
                        extracted = (
                            result.constrained_value
                            if result.constrained_value is not None
                            else ""
                        )
                        buckets[(True, extracted)].append(row_id)
                    else:
                        buckets[(False, value)].append(row_id)
                if len(buckets) < 2:
                    # All tuples agree (or all fail to match in the same way):
                    # the only remaining violation case is a single bucket of
                    # non-matching tuples, which cannot be witnessed by the
                    # pairwise semantics because the LHS-equivalent partner
                    # also fails the RHS — the implication is then falsified
                    # only when a matching partner exists, i.e. >= 2 buckets.
                    continue
                majority_bucket, majority_ids = max(
                    buckets.items(), key=lambda item: (len(item[1]), item[0][0], item[0][1])
                )
                suspects = tuple(
                    CellRef(row_id, attribute)
                    for bucket, ids in buckets.items()
                    if bucket != majority_bucket
                    for row_id in ids
                )
                expected_value: Optional[str] = None
                if majority_bucket[0] and majority_ids:
                    expected_value = relation.cell(majority_ids[0], attribute)
                cells = tuple(
                    CellRef(row_id, attr)
                    for row_id in row_ids
                    for attr in (*self.lhs, attribute)
                )
                found.append(
                    Violation(
                        constraint_kind="PFD",
                        constraint_repr=f"{self} @ {row.render(self.lhs, self.rhs)}",
                        cells=cells,
                        suspect_cells=suspects,
                        expected_value=expected_value,
                    )
                )
        return found

    # -- statistics -------------------------------------------------------------

    def row_statistics(self, relation: Relation) -> list[RowStatistics]:
        """Support and violation counts per tableau row."""
        statistics: list[RowStatistics] = []
        violations_by_row: dict[PatternTuple, set[int]] = defaultdict(set)
        for row in self.tableau:
            if row.is_constant_row(self.lhs, self.rhs):
                for violation in self._constant_row_violations(relation, row):
                    violations_by_row[row].update(c.row_id for c in violation.suspect_cells)
            else:
                for violation in self._variable_row_violations(relation, row):
                    violations_by_row[row].update(c.row_id for c in violation.suspect_cells)
        for row in self.tableau:
            support = len(self.matching_rows(relation, row))
            statistics.append(
                RowStatistics(
                    row=row,
                    support=support,
                    violating_tuples=len(violations_by_row.get(row, ())),
                )
            )
        return statistics

    def support(self, relation: Relation) -> int:
        """Number of tuples matched by at least one tableau row's LHS."""
        covered: set[int] = set()
        for row in self.tableau:
            covered.update(self.matching_rows(relation, row))
        return len(covered)

    def coverage(self, relation: Relation) -> float:
        """Fraction of tuples matched by at least one tableau row's LHS
        (the *coverage* of restriction (ii) in Section 4.2)."""
        if relation.row_count == 0:
            return 0.0
        return self.support(relation) / relation.row_count

    def violation_ratio(self, relation: Relation) -> float:
        """Fraction of supporting tuples flagged as suspects (the δ of
        restriction (iii))."""
        support = self.support(relation)
        if support == 0:
            return 0.0
        suspects: set[int] = set()
        for violation in self.violations(relation):
            suspects.update(cell.row_id for cell in violation.suspect_cells)
        return len(suspects) / support

    # -- display ------------------------------------------------------------------

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        rhs = ", ".join(self.rhs)
        return f"{self.relation_name}([{lhs}] -> [{rhs}], |Tp|={len(self.tableau)})"

    def describe(self) -> str:
        """Multi-line rendering: the embedded FD plus every tableau row."""
        header = str(self)
        rows = "\n".join("  " + row.render(self.lhs, self.rhs) for row in self.tableau)
        return f"{header}\n{rows}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PFD({self.lhs} -> {self.rhs}, rows={len(self.tableau)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PFD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.tableau == other.tableau
            and self.relation_name == other.relation_name
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs, self.tableau, self.relation_name))


def make_pfd(
    lhs: Union[Sequence[str], str],
    rhs: Union[Sequence[str], str],
    rows: Iterable[Mapping[str, CellSpec]],
    relation_name: str = "R",
) -> PFD:
    """Convenience constructor from plain mappings of pattern strings.

    Example
    -------
    >>> pfd = make_pfd(
    ...     "zip", "city",
    ...     [{"zip": r"{{900}}\\D{2}", "city": "Los\\ Angeles"}],
    ...     relation_name="Zip",
    ... )
    """
    return PFD(lhs, rhs, PatternTableau(rows), relation_name=relation_name)


def wildcard() -> Wildcard:
    """The tableau wildcard ``⊥`` (re-exported for convenience)."""
    from .tableau import WILDCARD

    return WILDCARD
