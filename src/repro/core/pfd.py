"""Pattern functional dependencies — the paper's central object.

A PFD ``ψ : R(X -> Y, Tp)`` consists of

* an embedded FD ``X -> Y`` over the schema of ``R``, and
* a pattern tableau ``Tp`` whose cells are constrained patterns or the
  wildcard ``⊥`` (see :mod:`repro.core.tableau`).

Satisfaction (Section 2.2): for every tableau row ``tp``, whenever two data
tuples both match every LHS pattern and are pairwise equivalent on the
constrained LHS parts, they must also match every RHS pattern and be
equivalent on the constrained RHS parts.  Rows whose constrained parts are
constants additionally apply to *single* tuples: any tuple matching the LHS
must match the RHS.

The implementation groups data tuples by their extracted constrained LHS
values, which makes the check linear in the table size per tableau row
(instead of quadratic over tuple pairs).  The grouping itself is served by
the relation's stripped-partition cache
(:meth:`~repro.dataset.relation.Relation.partitions`): each tableau row's
LHS corresponds to an intersection of per-(attribute, pattern) partitions,
built once and shared across violations, support, statistics, discovery
validation, and error detection — the per-row walk then touches equivalence
classes, not raw rows.

Pattern matching itself is vectorized through :mod:`repro.engine`: every
tableau cell is matched once per *distinct* column value (via the memoized
:class:`~repro.engine.evaluator.PatternEvaluator`) and the per-distinct
results are broadcast to rows through the relation's dictionary-encoded
columns.  All evaluation entry points accept an optional ``evaluator`` so
discovery, validation, and detection can share one match cache; when omitted
the process-wide default evaluator is used.

On top of that, evaluation is *set-at-a-time*: before a tableau is walked
row by row, :func:`prime_for_pfds` hands all of its patterns per attribute
to :meth:`~repro.engine.evaluator.PatternEvaluator.match_column_many`, which
compiles them into one shared DFA and scans each distinct column value once
for the whole set.  The subsequent per-row calls are then seeded from the
resulting masks, so a K-row tableau costs one scan — not K — per distinct
value (plus constrained-part extraction on the values that matched).
"""

from __future__ import annotations

import bisect
import dataclasses
from collections import defaultdict
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..constraints.base import CellRef, Violation, embedded_dependency_key
from ..constraints.fd import FD
from ..dataset.relation import Relation
from ..engine.backend import NUMPY, np
from ..engine.dictionary import DictionaryColumn
from ..engine.evaluator import PatternEvaluator, default_evaluator
from ..engine.partitions import PartitionManager, StrippedPartition
from ..exceptions import ConstraintError
from ..patterns.ast import Pattern
from ..storage.partitions import SqlStrippedPartition
from .tableau import CellSpec, PatternTableau, PatternTuple, Wildcard


def gather_tableau_patterns(pfds: Iterable["PFD"]) -> dict[str, list[Pattern]]:
    """Per attribute, the patterns that evaluating ``pfds`` will match.

    Collects the LHS patterns of every tableau row plus the RHS patterns of
    the *variable* rows (constant rows check their RHS by plain equality, so
    their RHS patterns are never matched).  Order is preserved and duplicates
    are dropped, making the result directly usable as a
    ``match_column_many`` batch per attribute.

    RHS patterns are included only when an attribute accumulates at least two
    distinct ones (a real batch): variable-row RHS matching is conditional —
    ``_variable_row_violations`` skips it entirely when no LHS group has two
    members — so a lone RHS pattern is left to that lazy path instead of
    being evaluated eagerly here.
    """
    lhs_by_attribute: dict[str, dict[Pattern, None]] = defaultdict(dict)
    rhs_by_attribute: dict[str, dict[Pattern, None]] = defaultdict(dict)
    for pfd in pfds:
        for row in pfd.tableau:
            for attribute in pfd.lhs:
                lhs_by_attribute[attribute][row.pattern(attribute)] = None
            if not row.is_constant_row(pfd.lhs, pfd.rhs):
                for attribute in pfd.rhs:
                    rhs_by_attribute[attribute][row.pattern(attribute)] = None
    gathered = {
        attribute: dict(patterns) for attribute, patterns in lhs_by_attribute.items()
    }
    for attribute, patterns in rhs_by_attribute.items():
        if len(patterns) >= 2:
            gathered.setdefault(attribute, {}).update(patterns)
    return {attribute: list(patterns) for attribute, patterns in gathered.items()}


def prime_for_pfds(
    relation: Relation,
    pfds: Iterable["PFD"],
    evaluator: Optional[PatternEvaluator] = None,
) -> PatternEvaluator:
    """Seed ``evaluator`` set-at-a-time for evaluating ``pfds`` on ``relation``.

    All tableau patterns that touch one column — across every row of every
    supplied PFD — are matched in a single
    :meth:`~repro.engine.evaluator.PatternEvaluator.match_column_many` batch
    (one shared-DFA scan per distinct value), so the per-row evaluation that
    follows is answered from the memoized masks.  Attributes missing from the
    relation's schema are skipped here; the per-PFD evaluation reports them.
    Single-pattern attributes are left to the per-pattern path.
    """
    evaluator = evaluator or default_evaluator()
    known = set(relation.attribute_names)
    for attribute, patterns in gather_tableau_patterns(pfds).items():
        if attribute in known and len(patterns) >= 2:
            evaluator.match_column_many(patterns, relation.dictionary(attribute))
    return evaluator


def gather_partition_keys(pfds: Iterable["PFD"]) -> list[tuple[str, Pattern]]:
    """The distinct (attribute, LHS pattern) pairs ``pfds`` will group by.

    One pair per stripped-partition *leaf*: duplicates across tableau rows
    and across sibling PFDs are dropped (order preserved), so priming walks
    each leaf exactly once instead of re-asking the cache per row.
    """
    keys: dict[tuple[str, Pattern], None] = {}
    for pfd in pfds:
        for row in pfd.tableau:
            for attribute in pfd.lhs:
                keys[(attribute, row.pattern(attribute))] = None
    return list(keys)


def prime_partitions_for_pfds(
    relation: Relation,
    pfds: Iterable["PFD"],
    evaluator: Optional[PatternEvaluator] = None,
) -> PartitionManager:
    """Build the leaf partitions that evaluating ``pfds`` will group by.

    Every (attribute, LHS pattern) pair across all tableau rows of all
    supplied PFDs maps to one stripped partition in the relation's cache;
    building them here — after :func:`prime_for_pfds` has batched the
    pattern matching — means sibling PFDs sharing a pattern share one
    grouping pass, and the subsequent per-row evaluation only intersects
    cached classes.  Attributes missing from the schema are skipped (the
    per-PFD evaluation reports them).
    """
    manager = relation.partitions()
    known = set(relation.attribute_names)
    for attribute, pattern in gather_partition_keys(pfds):
        if attribute in known:
            manager.pattern_partition(attribute, pattern, evaluator=evaluator)
    return manager


@dataclasses.dataclass(frozen=True)
class RowStatistics:
    """Support / violation statistics of one tableau row on one relation."""

    row: PatternTuple
    support: int
    violating_tuples: int

    @property
    def violation_ratio(self) -> float:
        if self.support == 0:
            return 0.0
        return self.violating_tuples / self.support


class PFD:
    """A pattern functional dependency ``R(X -> Y, Tp)``.

    Parameters
    ----------
    lhs / rhs:
        Attribute names (a single string is promoted to a one-element tuple).
    tableau:
        A :class:`PatternTableau`, or an iterable of row mappings
        ``{attribute: pattern-or-"⊥"}`` where patterns may be given as
        textual pattern strings.
    relation_name:
        Name used when printing the PFD (``Zip([zip] -> [city], ...)``).
    """

    def __init__(
        self,
        lhs: Union[Sequence[str], str],
        rhs: Union[Sequence[str], str],
        tableau: Union[PatternTableau, Iterable[Mapping[str, CellSpec]]],
        relation_name: str = "R",
    ):
        self.lhs: tuple[str, ...] = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        self.rhs: tuple[str, ...] = (rhs,) if isinstance(rhs, str) else tuple(rhs)
        if not self.lhs or not self.rhs:
            raise ConstraintError("a PFD needs at least one LHS and one RHS attribute")
        if not isinstance(tableau, PatternTableau):
            tableau = PatternTableau(tableau)
        if len(tableau) == 0:
            raise ConstraintError("a PFD needs at least one tableau row")
        tableau.validate(self.lhs, self.rhs)
        self.tableau = tableau
        self.relation_name = relation_name

    # -- structure -----------------------------------------------------------

    @property
    def embedded_fd(self) -> FD:
        """The embedded (standard) FD ``X -> Y``."""
        return FD(self.lhs, self.rhs, self.relation_name)

    @property
    def is_trivial(self) -> bool:
        """Trivial PFDs (RHS contained in LHS) are ignored by discovery."""
        return set(self.rhs) <= set(self.lhs)

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def dependency_key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Canonical key of the embedded dependency (used by the evaluation,
        which counts embedded dependencies rather than individual PFDs)."""
        return embedded_dependency_key(self.lhs, self.rhs)

    def normalized(self) -> list["PFD"]:
        """Normal form: one PFD per RHS attribute (Section 2.2)."""
        if len(self.rhs) == 1:
            return [self]
        result = []
        for attr in self.rhs:
            rows = []
            for row in self.tableau:
                cells = {a: row.cell(a) for a in (*self.lhs, attr)}
                rows.append(PatternTuple.from_mapping(cells))
            result.append(PFD(self.lhs, (attr,), PatternTableau(rows), self.relation_name))
        return result

    def constant_rows(self) -> list[PatternTuple]:
        """Rows applicable to single tuples (constant constrained parts)."""
        return [row for row in self.tableau if row.is_constant_row(self.lhs, self.rhs)]

    def variable_rows(self) -> list[PatternTuple]:
        """Rows that require a pair of tuples to witness a violation."""
        return [row for row in self.tableau if not row.is_constant_row(self.lhs, self.rhs)]

    @property
    def is_constant(self) -> bool:
        return not self.variable_rows()

    @property
    def is_variable(self) -> bool:
        return bool(self.variable_rows())

    # -- matching helpers ------------------------------------------------------

    def _prime_lhs(self, relation: Relation, evaluator: PatternEvaluator) -> None:
        """Batch-match all LHS tableau patterns per attribute (one shared-DFA
        scan per distinct value) before the row-by-row walk."""
        for attribute in self.lhs:
            patterns = list(
                dict.fromkeys(row.pattern(attribute) for row in self.tableau)
            )
            if len(patterns) >= 2:
                evaluator.match_column_many(patterns, relation.dictionary(attribute))

    def _row_partition(
        self,
        relation: Relation,
        row: PatternTuple,
        evaluator: PatternEvaluator,
    ) -> StrippedPartition:
        """The stripped partition of a tableau row's LHS: covered rows are
        the tuples matching every LHS pattern (with non-empty cells), and
        classes group them by the tuple of extracted constrained parts.

        Served from the relation's partition cache: single-attribute rows
        read one (attribute, pattern) leaf, multi-attribute rows intersect
        the cached leaves via the probe-table product — nothing re-groups
        the relation row by row.
        """
        manager = relation.partitions()
        keys = [
            manager.key(attribute, row.pattern(attribute)) for attribute in self.lhs
        ]
        if len(keys) == 1:
            return manager.partition_for(keys[0], evaluator)
        return manager.intersection(keys, evaluator)

    def matching_rows(
        self,
        relation: Relation,
        row: PatternTuple,
        evaluator: Optional[PatternEvaluator] = None,
    ) -> list[int]:
        """Tuple ids matching every LHS pattern of ``row`` (its support set)."""
        evaluator = evaluator or default_evaluator()
        return list(self._row_partition(relation, row, evaluator).covered)

    # -- satisfaction / violations ---------------------------------------------

    def holds_on(
        self, relation: Relation, evaluator: Optional[PatternEvaluator] = None
    ) -> bool:
        """``T |= ψ``: no tableau row is violated."""
        return not self.violations(relation, evaluator=evaluator)

    def violations(
        self,
        relation: Relation,
        evaluator: Optional[PatternEvaluator] = None,
        since_row: int = 0,
        changed_rows: Optional[Sequence[int]] = None,
    ) -> list[Violation]:
        """All violations of the PFD on ``relation``.

        Constant rows yield one violation per offending tuple; variable rows
        yield one violation per offending group (with the minority cells
        marked as suspects, as used by the error-detection experiments).

        ``since_row`` scopes the search to the *delta* of an append: only
        tuples with ``row_id >= since_row`` (constant rows) and equivalence
        classes containing at least one such tuple (variable rows) are
        examined.  Because classes keep their row ids ascending, the class
        filter is one comparison against the last member, and — together
        with the delta-maintained partition cache — the scoped search is
        exactly the set of violations a full evaluation would report minus
        those whose participating ``cells`` all predate ``since_row``.  A
        touched class is re-examined as a whole, so on a base that was not
        fully clean the scoped report can (re-)flag pre-existing suspect
        cells whose class the delta joined.

        ``changed_rows`` is the CRUD generalization: an explicit row-id set
        (from :attr:`~repro.dataset.mutations.MutationResult.changed_rows`)
        replaces the ``>= since_row`` recency test, scoping the search to
        the listed tuples (constant rows) and the classes *currently
        containing* one of them (variable rows).  A row that left a class —
        its cell now carries a different value — takes that class out of
        scope, matching the append contract: the scoped report equals the
        full report on the final state restricted to the changed tuples and
        their classes.  When given, ``changed_rows`` takes precedence over
        ``since_row``; an empty set reports nothing.
        """
        relation.schema.validate_attributes(self.attributes())
        if changed_rows is not None:
            changed_rows = tuple(sorted({int(row_id) for row_id in changed_rows}))
            if not changed_rows:
                return []
        evaluator = prime_for_pfds(relation, (self,), evaluator)
        found: list[Violation] = []
        for row in self.tableau:
            if row.is_constant_row(self.lhs, self.rhs):
                found.extend(
                    self._constant_row_violations(
                        relation, row, evaluator, since_row, changed_rows
                    )
                )
            else:
                found.extend(
                    self._variable_row_violations(
                        relation, row, evaluator, since_row, changed_rows
                    )
                )
        return found

    def _constant_row_violations(
        self,
        relation: Relation,
        row: PatternTuple,
        evaluator: PatternEvaluator,
        since_row: int = 0,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        found: list[Violation] = []
        partition = self._row_partition(relation, row, evaluator)
        rhs_expected = {
            attribute: row.pattern(attribute).constant_value() for attribute in self.rhs
        }
        # Per-code equality against the expected constant, per RHS attribute.
        rhs_columns = {attribute: relation.dictionary(attribute) for attribute in self.rhs}
        if partition.backend == NUMPY and all(
            column.backend == NUMPY for column in rhs_columns.values()
        ):
            return self._constant_row_violations_numpy(
                row, partition, rhs_expected, rhs_columns, since_row, changed_rows
            )
        if isinstance(partition, SqlStrippedPartition):
            return self._constant_row_violations_sql(
                row, partition, rhs_expected, rhs_columns, since_row, changed_rows
            )
        supported = partition.covered
        if changed_rows is not None:
            changed_set = set(changed_rows)
            supported = tuple(
                row_id for row_id in supported if row_id in changed_set
            )
        elif since_row:
            # Covered rows are ascending: bisect to the first delta row.
            supported = supported[bisect.bisect_left(supported, since_row):]
        if not supported:
            return found
        rhs_equal = {
            attribute: [value == rhs_expected[attribute] for value in column.values]
            for attribute, column in rhs_columns.items()
        }
        for row_id in supported:
            for attribute in self.rhs:
                column = rhs_columns[attribute]
                code = column.codes[row_id]
                if rhs_equal[attribute][code]:
                    continue
                found.append(
                    self._constant_violation(row, row_id, attribute, rhs_expected)
                )
        return found

    def _constant_violation(
        self,
        row: PatternTuple,
        row_id: int,
        attribute: str,
        rhs_expected: Mapping[str, Optional[str]],
    ) -> Violation:
        cells = tuple(CellRef(row_id, attr) for attr in (*self.lhs, attribute))
        return Violation(
            constraint_kind="PFD",
            constraint_repr=f"{self} @ {row.render(self.lhs, self.rhs)}",
            cells=cells,
            suspect_cells=(CellRef(row_id, attribute),),
            expected_value=rhs_expected[attribute],
        )

    def _constant_row_violations_numpy(
        self,
        row: PatternTuple,
        partition: StrippedPartition,
        rhs_expected: Mapping[str, Optional[str]],
        rhs_columns: Mapping[str, "DictionaryColumn"],
        since_row: int,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        """Vectorized constant-row check: per-code equality masks broadcast
        to the supported rows via fancy indexing; Python touches only the
        offending positions, emitting the same violations in the same
        (row-major, then RHS attribute) order as the fallback path."""
        supported = partition.covered_array()
        if changed_rows is not None:
            # Both sides are sorted and unique (covered rows ascending, the
            # changed set normalized in violations()).
            supported = np.intersect1d(
                supported,
                np.asarray(changed_rows, dtype=np.int64),
                assume_unique=True,
            )
        elif since_row:
            supported = supported[np.searchsorted(supported, since_row):]
        if not len(supported):
            return []
        bad: dict[str, "np.ndarray"] = {}
        any_bad = np.zeros(len(supported), dtype=bool)
        for attribute in self.rhs:
            column = rhs_columns[attribute]
            expected = rhs_expected[attribute]
            equal = np.fromiter(
                (value == expected for value in column.values),
                dtype=bool,
                count=column.distinct_count,
            )
            attr_bad = ~equal[column.codes_array()[supported]]
            bad[attribute] = attr_bad
            any_bad |= attr_bad
        found: list[Violation] = []
        for position in np.flatnonzero(any_bad).tolist():
            row_id = int(supported[position])
            for attribute in self.rhs:
                if bad[attribute][position]:
                    found.append(
                        self._constant_violation(row, row_id, attribute, rhs_expected)
                    )
        return found

    def _constant_row_violations_sql(
        self,
        row: PatternTuple,
        partition: SqlStrippedPartition,
        rhs_expected: Mapping[str, Optional[str]],
        rhs_columns: Mapping[str, "DictionaryColumn"],
        since_row: int,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        """Pushed-down constant-row check: the accepted code set of each RHS
        attribute (the codes decoding to the expected constant) is shipped
        into one query over the partition's spec, so only the violating rows
        ever leave SQLite — same violations, same (row-major, then RHS
        attribute) order as the in-memory paths."""
        rhs_cols: list[int] = []
        good_codes: list[list[int]] = []
        good_sets: dict[str, set[int]] = {}
        for attribute in self.rhs:
            column = rhs_columns[attribute]
            expected = rhs_expected[attribute]
            rhs_cols.append(column._col_index)
            good = [
                code for code, value in enumerate(column.values) if value == expected
            ]
            good_codes.append(good)
            good_sets[attribute] = set(good)
        found: list[Violation] = []
        for fetched in partition.constant_violation_rows(
            rhs_cols, good_codes, since_row, changed_rows
        ):
            row_id = fetched[0]
            for offset, attribute in enumerate(self.rhs):
                if fetched[1 + offset] in good_sets[attribute]:
                    continue
                found.append(
                    self._constant_violation(row, row_id, attribute, rhs_expected)
                )
        return found

    def _variable_row_violations(
        self,
        relation: Relation,
        row: PatternTuple,
        evaluator: PatternEvaluator,
        since_row: int = 0,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        # Variable rows need a pair of LHS-equivalent tuples to witness a
        # violation — which is exactly what the stripped classes are: the
        # singletons are already gone, so the RHS work below scales with the
        # surviving classes, not with the relation.
        partition = self._row_partition(relation, row, evaluator)
        if partition.backend == NUMPY:
            return self._variable_row_violations_numpy(
                relation, row, evaluator, partition, since_row, changed_rows
            )
        if isinstance(partition, SqlStrippedPartition):
            return self._variable_row_violations_sql(
                relation, row, evaluator, partition, since_row, changed_rows
            )
        classes = partition.classes
        if changed_rows is not None:
            # A class is in scope iff it *currently contains* a changed row
            # (the probe table indexes exactly the stripped classes).
            probe = partition.probe_table()
            touched = sorted(
                {probe[row_id] for row_id in changed_rows if row_id in probe}
            )
            classes = tuple(classes[index] for index in touched)
        elif since_row:
            # A class touches the delta iff its largest (= last) member is an
            # appended row; untouched classes were fully checked before.
            classes = tuple(
                class_rows for class_rows in classes if class_rows[-1] >= since_row
            )
        if not classes:
            return []
        # Per-code RHS bucket, computed once per attribute (it depends only on
        # the pattern and the column, not on the LHS group): a tuple that
        # matches the RHS pattern is bucketed by its constrained value, a
        # non-matching tuple gets a bucket of its own keyed by the full value.
        rhs_buckets: dict[str, tuple[Sequence[int], list[tuple[bool, str]]]] = {}
        for attribute in self.rhs:
            column = relation.dictionary(attribute)
            match = evaluator.match_column(row.pattern(attribute), column)
            rhs_buckets[attribute] = (
                column.codes,
                self._rhs_bucket_by_code(column, match),
            )
        found: list[Violation] = []
        for row_ids in classes:
            for attribute in self.rhs:
                codes, bucket_by_code = rhs_buckets[attribute]
                buckets: dict[tuple[bool, str], list[int]] = defaultdict(list)
                for row_id in row_ids:
                    buckets[bucket_by_code[codes[row_id]]].append(row_id)
                if len(buckets) < 2:
                    # All tuples agree (or all fail to match in the same way):
                    # the only remaining violation case is a single bucket of
                    # non-matching tuples, which cannot be witnessed by the
                    # pairwise semantics because the LHS-equivalent partner
                    # also fails the RHS — the implication is then falsified
                    # only when a matching partner exists, i.e. >= 2 buckets.
                    continue
                found.append(
                    self._bucket_violation(relation, row, attribute, row_ids, buckets)
                )
        return found

    @staticmethod
    def _rhs_bucket_by_code(
        column: DictionaryColumn, match
    ) -> list[tuple[bool, str]]:
        """Per-code RHS bucket key: a matching value is bucketed by its
        extracted constrained part, a non-matching value by itself."""
        bucket_by_code: list[tuple[bool, str]] = []
        for value, result in zip(column.values, match.results):
            if result.matched:
                bucket_by_code.append(
                    (
                        True,
                        result.constrained_value
                        if result.constrained_value is not None
                        else "",
                    )
                )
            else:
                bucket_by_code.append((False, value))
        return bucket_by_code

    def _bucket_violation(
        self,
        relation: Relation,
        row: PatternTuple,
        attribute: str,
        row_ids: Sequence[int],
        buckets: Mapping[tuple[bool, str], list[int]],
    ) -> Violation:
        """One variable-row violation: the class disagrees on ``attribute``;
        everything outside the majority bucket is suspect."""
        majority_bucket, majority_ids = max(
            buckets.items(), key=lambda item: (len(item[1]), item[0][0], item[0][1])
        )
        suspects = tuple(
            CellRef(row_id, attribute)
            for bucket, ids in buckets.items()
            if bucket != majority_bucket
            for row_id in ids
        )
        expected_value: Optional[str] = None
        if majority_bucket[0] and majority_ids:
            expected_value = relation.cell(majority_ids[0], attribute)
        cells = tuple(
            CellRef(row_id, attr)
            for row_id in row_ids
            for attr in (*self.lhs, attribute)
        )
        return Violation(
            constraint_kind="PFD",
            constraint_repr=f"{self} @ {row.render(self.lhs, self.rhs)}",
            cells=cells,
            suspect_cells=suspects,
            expected_value=expected_value,
        )

    def _variable_row_violations_numpy(
        self,
        relation: Relation,
        row: PatternTuple,
        evaluator: PatternEvaluator,
        partition: StrippedPartition,
        since_row: int,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        """Vectorized variable-row check.

        Per RHS attribute the bucket keys are interned to integer ids per
        *distinct* value, broadcast through the code vector to the stripped
        rows, and the violating classes found with one all-equal-within-class
        reduction (compare against the class's first element, repeated).
        Python then walks only the violating classes — typically a tiny
        fraction — re-deriving their buckets to emit violations identical,
        order included, to the fallback path.

        A ``changed_rows`` scope restricts the scan to the touched classes
        before any per-row work happens: the probe array maps the changed
        ids straight to their classes, the class row arrays are gathered
        for just those classes, and the same all-equal-within-class
        reduction runs on that subset — O(changed-class rows) instead of
        O(stripped rows), which is what makes a small update batch cheap
        against a large table."""
        rowids, offsets = partition.class_arrays()
        class_count = len(offsets) - 1
        if class_count == 0:
            return []
        class_map = None
        if changed_rows is not None:
            # A class is in scope iff it currently contains a changed row:
            # probe the changed ids to class indices (-1 = singleton).
            probe = partition.probe_array()
            changed = np.asarray(changed_rows, dtype=np.int64)
            changed = changed[changed < len(probe)]
            touched = np.unique(probe[changed])
            touched = touched[touched >= 0]
            if touched.size == 0:
                return []
            rowids = np.concatenate(
                [rowids[offsets[index]:offsets[index + 1]] for index in touched.tolist()]
            )
            offsets = np.concatenate(
                ([0], np.cumsum((offsets[touched + 1] - offsets[touched])))
            )
            class_map = touched
            class_count = len(touched)
        sizes = np.diff(offsets)
        violating = np.zeros(class_count, dtype=bool)
        per_attribute: dict[str, "np.ndarray"] = {}
        rhs_buckets: dict[str, tuple[Sequence[int], list[tuple[bool, str]]]] = {}
        class_ids = None
        for attribute in self.rhs:
            column = relation.dictionary(attribute)
            match = evaluator.match_column(row.pattern(attribute), column)
            bucket_by_code = self._rhs_bucket_by_code(column, match)
            rhs_buckets[attribute] = (column.codes, bucket_by_code)
            id_of: dict[tuple[bool, str], int] = {}
            bucket_ids = np.empty(column.distinct_count, dtype=np.int64)
            for code, bucket in enumerate(bucket_by_code):
                bucket_ids[code] = id_of.setdefault(bucket, len(id_of))
            stripped = bucket_ids[column.codes_array()[rowids]]
            first = np.repeat(stripped[offsets[:-1]], sizes)
            disagree = stripped != first
            attr_bad = np.zeros(class_count, dtype=bool)
            if disagree.any():
                if class_ids is None:
                    class_ids = np.repeat(
                        np.arange(class_count, dtype=np.int64), sizes
                    )
                attr_bad[np.unique(class_ids[disagree])] = True
            per_attribute[attribute] = attr_bad
            violating |= attr_bad
        if since_row and class_map is None:
            # A class touches the delta iff its largest (= last) member is an
            # appended row; untouched classes were fully checked before.
            # (A changed_rows scope takes precedence and already filtered.)
            violating &= rowids[offsets[1:] - 1] >= since_row
        found: list[Violation] = []
        for class_index in np.flatnonzero(violating).tolist():
            row_ids = rowids[offsets[class_index]:offsets[class_index + 1]].tolist()
            for attribute in self.rhs:
                if not per_attribute[attribute][class_index]:
                    continue
                codes, bucket_by_code = rhs_buckets[attribute]
                buckets: dict[tuple[bool, str], list[int]] = defaultdict(list)
                for row_id in row_ids:
                    buckets[bucket_by_code[codes[row_id]]].append(row_id)
                found.append(
                    self._bucket_violation(relation, row, attribute, row_ids, buckets)
                )
        return found

    def _variable_row_violations_sql(
        self,
        relation: Relation,
        row: PatternTuple,
        evaluator: PatternEvaluator,
        partition: SqlStrippedPartition,
        since_row: int,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        """Pushed-down variable-row check.

        Per RHS attribute the bucket keys (matched/constrained vs literal
        value) are interned to integer ids per *distinct* value and shipped
        as a ``(code, bucket)`` scratch table; one grouped query then returns
        only the classes spanning >= 2 buckets on some attribute and touching
        the delta.  Python re-derives those classes' buckets — a point fetch
        of the class's RHS codes, never a column scan — and emits violations
        identical, order included, to the in-memory paths."""
        store = relation.store
        rhs_cols: list[int] = []
        bucket_tables: list[str] = []
        buckets_by_attribute: dict[str, list[tuple[bool, str]]] = {}
        try:
            for attribute in self.rhs:
                column = relation.dictionary(attribute)
                match = evaluator.match_column(row.pattern(attribute), column)
                bucket_by_code = self._rhs_bucket_by_code(column, match)
                buckets_by_attribute[attribute] = bucket_by_code
                bucket_ids: dict[tuple[bool, str], int] = {}
                rhs_cols.append(column._col_index)
                bucket_tables.append(
                    store.int_map_table(
                        (code, bucket_ids.setdefault(bucket, len(bucket_ids)))
                        for code, bucket in enumerate(bucket_by_code)
                    )
                )
            violating = partition.variable_violation_classes(
                rhs_cols, bucket_tables, since_row, changed_rows
            )
        finally:
            for table in bucket_tables:
                store.drop_table(table)
        found: list[Violation] = []
        columns = ", ".join(f"c{col}" for col in rhs_cols)
        for row_ids in violating:
            in_sql, scratch = store.code_set_sql("rid", row_ids)
            try:
                codes_of = {
                    fetched[0]: fetched[1:]
                    for fetched in store.execute(
                        f"SELECT rid, {columns} FROM rows WHERE {in_sql}"
                    )
                }
            finally:
                for table in scratch:
                    store.drop_table(table)
            for index, attribute in enumerate(self.rhs):
                bucket_by_code = buckets_by_attribute[attribute]
                buckets: dict[tuple[bool, str], list[int]] = defaultdict(list)
                for row_id in row_ids:
                    buckets[bucket_by_code[codes_of[row_id][index]]].append(row_id)
                if len(buckets) < 2:
                    continue
                found.append(
                    self._bucket_violation(relation, row, attribute, row_ids, buckets)
                )
        return found

    # -- statistics -------------------------------------------------------------

    def row_statistics(
        self, relation: Relation, evaluator: Optional[PatternEvaluator] = None
    ) -> list[RowStatistics]:
        """Support and violation counts per tableau row."""
        evaluator = prime_for_pfds(relation, (self,), evaluator)
        statistics: list[RowStatistics] = []
        violations_by_row: dict[PatternTuple, set[int]] = defaultdict(set)
        for row in self.tableau:
            if row.is_constant_row(self.lhs, self.rhs):
                for violation in self._constant_row_violations(relation, row, evaluator):
                    violations_by_row[row].update(c.row_id for c in violation.suspect_cells)
            else:
                for violation in self._variable_row_violations(relation, row, evaluator):
                    violations_by_row[row].update(c.row_id for c in violation.suspect_cells)
        for row in self.tableau:
            support = len(self.matching_rows(relation, row, evaluator=evaluator))
            statistics.append(
                RowStatistics(
                    row=row,
                    support=support,
                    violating_tuples=len(violations_by_row.get(row, ())),
                )
            )
        return statistics

    def support(
        self, relation: Relation, evaluator: Optional[PatternEvaluator] = None
    ) -> int:
        """Number of tuples matched by at least one tableau row's LHS."""
        evaluator = evaluator or default_evaluator()
        self._prime_lhs(relation, evaluator)
        partitions = [
            self._row_partition(relation, row, evaluator) for row in self.tableau
        ]
        if partitions and all(p.backend == NUMPY for p in partitions):
            union = partitions[0].covered_array()
            for partition in partitions[1:]:
                union = np.union1d(union, partition.covered_array())
            return int(len(union))
        if (
            partitions
            and all(isinstance(p, SqlStrippedPartition) for p in partitions)
            and len({id(p._store) for p in partitions}) == 1
        ):
            # All rows' LHSes ground out in one store: the distinct covered
            # row count is a single UNION-of-selects aggregate in SQLite.
            union_sql = " UNION ".join(p.covered_select() for p in partitions)
            return partitions[0]._store.fetch_value(
                f"SELECT COUNT(*) FROM ({union_sql})"
            )
        covered: set[int] = set()
        for partition in partitions:
            covered.update(partition.covered)
        return len(covered)

    def coverage(
        self, relation: Relation, evaluator: Optional[PatternEvaluator] = None
    ) -> float:
        """Fraction of tuples matched by at least one tableau row's LHS
        (the *coverage* of restriction (ii) in Section 4.2)."""
        if relation.row_count == 0:
            return 0.0
        return self.support(relation, evaluator=evaluator) / relation.row_count

    def violation_ratio(
        self, relation: Relation, evaluator: Optional[PatternEvaluator] = None
    ) -> float:
        """Fraction of supporting tuples flagged as suspects (the δ of
        restriction (iii))."""
        evaluator = evaluator or default_evaluator()
        support = self.support(relation, evaluator=evaluator)
        if support == 0:
            return 0.0
        suspects: set[int] = set()
        for violation in self.violations(relation, evaluator=evaluator):
            suspects.update(cell.row_id for cell in violation.suspect_cells)
        return len(suspects) / support

    # -- serialization -------------------------------------------------------------

    def to_json_dict(self) -> dict:
        """JSON-serializable form of the PFD (inverse of :meth:`from_json_dict`).

        Tableau cells are stored as textual pattern strings (``"⊥"`` for the
        wildcard), so the file is human-readable and diff-friendly.
        """
        return {
            "relation": self.relation_name,
            "lhs": list(self.lhs),
            "rhs": list(self.rhs),
            "tableau": self.tableau.to_json_rows(),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "PFD":
        """Rebuild a PFD from :meth:`to_json_dict` output.

        ``lhs``/``rhs`` are passed through unchanged so a hand-written
        document may use a plain string for a single attribute (promoted by
        the constructor) as well as a list.
        """
        return cls(
            data["lhs"],
            data["rhs"],
            PatternTableau.from_json_rows(data["tableau"]),
            relation_name=data.get("relation", "R"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string."""
        import json

        return json.dumps(self.to_json_dict(), ensure_ascii=False, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PFD":
        """Deserialize from a JSON string produced by :meth:`to_json`."""
        import json

        return cls.from_json_dict(json.loads(text))

    # -- display ------------------------------------------------------------------

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        rhs = ", ".join(self.rhs)
        return f"{self.relation_name}([{lhs}] -> [{rhs}], |Tp|={len(self.tableau)})"

    def describe(self) -> str:
        """Multi-line rendering: the embedded FD plus every tableau row."""
        header = str(self)
        rows = "\n".join("  " + row.render(self.lhs, self.rhs) for row in self.tableau)
        return f"{header}\n{rows}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PFD({self.lhs} -> {self.rhs}, rows={len(self.tableau)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PFD):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.tableau == other.tableau
            and self.relation_name == other.relation_name
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs, self.tableau, self.relation_name))


def make_pfd(
    lhs: Union[Sequence[str], str],
    rhs: Union[Sequence[str], str],
    rows: Iterable[Mapping[str, CellSpec]],
    relation_name: str = "R",
) -> PFD:
    """Convenience constructor from plain mappings of pattern strings.

    Example
    -------
    >>> pfd = make_pfd(
    ...     "zip", "city",
    ...     [{"zip": r"{{900}}\\D{2}", "city": "Los\\ Angeles"}],
    ...     relation_name="Zip",
    ... )
    """
    return PFD(lhs, rhs, PatternTableau(rows), relation_name=relation_name)


def wildcard() -> Wildcard:
    """The tableau wildcard ``⊥`` (re-exported for convenience)."""
    from .tableau import WILDCARD

    return WILDCARD
