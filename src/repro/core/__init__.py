"""The paper's primary contribution: pattern functional dependencies.

The two central classes are :class:`~repro.core.pfd.PFD` and
:class:`~repro.core.tableau.PatternTableau`; violations are reported with the
shared :class:`~repro.constraints.base.Violation` objects.
"""

from ..constraints.base import CellRef, Violation
from .pfd import PFD, RowStatistics, gather_tableau_patterns, make_pfd, prime_for_pfds
from .serialization import (
    load_pfds,
    load_pfds_document,
    pfds_from_json,
    pfds_from_json_document,
    pfds_to_json,
    save_pfds,
)
from .tableau import (
    WILDCARD,
    CellSpec,
    PatternTableau,
    PatternTuple,
    Wildcard,
    resolve_cell,
)

__all__ = [
    "CellRef",
    "Violation",
    "PFD",
    "RowStatistics",
    "gather_tableau_patterns",
    "make_pfd",
    "prime_for_pfds",
    "load_pfds",
    "load_pfds_document",
    "pfds_from_json",
    "pfds_from_json_document",
    "pfds_to_json",
    "save_pfds",
    "WILDCARD",
    "CellSpec",
    "PatternTableau",
    "PatternTuple",
    "Wildcard",
    "resolve_cell",
]
