"""Synthetic table generators with ground truth.

Every generator returns a :class:`GeneratedTable`: the relation itself, the
embedded dependencies that genuinely hold through partial values (the ground
truth for Table 7's precision/recall), validation oracles (the ground truth
for Table 8), and the cells that the generator deliberately dirtied together
with their correct values (the ground truth for the error-detection
experiments).

All generation is deterministic in the seed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional, Sequence

from ..constraints.base import CellRef
from ..dataset.relation import Relation
from ..dataset.schema import AttributeRole, Schema, Attribute
from . import pools

DependencyKey = tuple[tuple[str, ...], tuple[str, ...]]


@dataclasses.dataclass
class GeneratedTable:
    """A synthetic table plus everything needed to evaluate against it."""

    name: str
    repository: str
    description: str
    relation: Relation
    true_dependencies: set[DependencyKey]
    oracles: dict[str, dict[str, str]]
    error_cells: dict[CellRef, str]

    @property
    def row_count(self) -> int:
        return self.relation.row_count

    @property
    def column_count(self) -> int:
        return len(self.relation.schema)

    def clean_relation(self) -> Relation:
        """The relation with every dirtied cell restored to its true value."""
        clean = self.relation.copy()
        for cell, original in self.error_cells.items():
            clean.set_cell(cell.row_id, cell.attribute, original)
        return clean


def dependency(lhs: Sequence[str] | str, rhs: str) -> DependencyKey:
    """Canonical embedded-dependency key helper for ground-truth lists."""
    lhs_tuple = (lhs,) if isinstance(lhs, str) else tuple(lhs)
    return (tuple(sorted(lhs_tuple)), (rhs,))


# ---------------------------------------------------------------------------
# Low-level value factories
# ---------------------------------------------------------------------------


def _person(rng: random.Random, unisex_fraction: float = 0.02) -> tuple[str, str]:
    """A (full name, gender) pair; a small fraction of names are unisex."""
    if rng.random() < unisex_fraction:
        first = rng.choice(pools.UNISEX_FIRST_NAMES)
        gender = rng.choice(pools.GENDERS)
    elif rng.random() < 0.5:
        first = rng.choice(pools.MALE_FIRST_NAMES)
        gender = "M"
    else:
        first = rng.choice(pools.FEMALE_FIRST_NAMES)
        gender = "F"
    last = rng.choice(pools.LAST_NAMES)
    if rng.random() < 0.15:
        middle = rng.choice("ABCDEFGHJKLMNPRSTW")
        return f"{first} {middle}. {last}", gender
    return f"{first} {last}", gender


def _person_last_first(rng: random.Random) -> tuple[str, str]:
    """``Last, First M.`` formatted names (Table 3's Full Name column)."""
    full, gender = _person(rng)
    parts = full.split(" ")
    first = parts[0]
    last = parts[-1]
    middle = f" {parts[1]}" if len(parts) == 3 else ""
    return f"{last}, {first}{middle}", gender


def _zip_city_state(rng: random.Random) -> tuple[str, str, str]:
    prefix = rng.choice(list(pools.ZIP_PREFIXES))
    city, state = pools.ZIP_PREFIXES[prefix]
    return f"{prefix}{rng.randint(0, 99):02d}", city, state


def _phone_for(rng: random.Random, area_code: Optional[str] = None) -> tuple[str, str]:
    if area_code is None:
        area_code = rng.choice(list(pools.AREA_CODES))
    state = pools.AREA_CODES[area_code]
    return f"{area_code}{rng.randint(0, 9_999_999):07d}", state


def _employee_id(rng: random.Random) -> tuple[str, str]:
    prefix = rng.choice(list(pools.EMPLOYEE_ID_PREFIXES))
    department = pools.EMPLOYEE_ID_PREFIXES[prefix]
    return f"{prefix}-{rng.randint(1, 9)}-{rng.randint(100, 999)}", department


def _grant_id(rng: random.Random) -> tuple[str, str]:
    prefix = rng.choice(list(pools.GRANT_PROGRAMS))
    program = pools.GRANT_PROGRAMS[prefix]
    return f"{prefix}-{rng.randint(2010, 2023)}-{rng.randint(1000, 9999)}", program


def _course(rng: random.Random) -> tuple[str, str, str]:
    prefix = rng.choice(list(pools.COURSE_DEPARTMENTS))
    department = pools.COURSE_DEPARTMENTS[prefix]
    number = rng.randint(1, 4) * 100 + rng.randint(0, 99)
    level = "Undergraduate" if number < 300 else "Graduate"
    return f"{prefix}-{number}", department, level


def _typo(rng: random.Random, value: str) -> str:
    """Character-level perturbation used for the generator's natural dirt."""
    if not value:
        return "?"
    index = rng.randrange(len(value))
    kind = rng.choice(("drop", "dup", "sub", "case"))
    if kind == "drop" and len(value) > 2:
        return value[:index] + value[index + 1 :]
    if kind == "dup":
        return value[: index + 1] + value[index] + value[index + 1 :]
    if kind == "case" and value[index].isalpha():
        swapped = value[index].lower() if value[index].isupper() else value[index].upper()
        return value[:index] + swapped + value[index + 1 :]
    replacement = rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
    return value[:index] + replacement + value[index + 1 :]


def _dirty(
    rng: random.Random,
    relation: Relation,
    attribute: str,
    rate: float,
    replacement: Optional[Callable[[random.Random, str], str]] = None,
    swap_pool: Optional[Sequence[str]] = None,
) -> dict[CellRef, str]:
    """Corrupt ``rate`` of the non-empty cells of one column, returning the
    map from corrupted cell to its original value."""
    errors: dict[CellRef, str] = {}
    candidates = [
        row_id
        for row_id in range(relation.row_count)
        if relation.cell(row_id, attribute)
    ]
    count = int(round(rate * relation.row_count))
    if count == 0 or not candidates:
        return errors
    rng.shuffle(candidates)
    for row_id in candidates[:count]:
        original = relation.cell(row_id, attribute)
        if swap_pool:
            alternatives = [value for value in swap_pool if value != original]
            new_value = rng.choice(alternatives) if alternatives else _typo(rng, original)
        elif replacement is not None:
            new_value = replacement(rng, original)
        else:
            new_value = _typo(rng, original)
        if new_value == original:
            new_value = original + "x"
        relation.set_cell(row_id, attribute, new_value)
        errors[CellRef(row_id, attribute)] = original
    return errors


def _scaled(base: int, scale: float) -> int:
    return max(40, int(base * scale))


# ---------------------------------------------------------------------------
# GOV repository (data.gov archetypes): T1–T5
# ---------------------------------------------------------------------------


def build_gov_contacts(rows: int = 800, seed: int = 1, dirt_rate: float = 0.02) -> GeneratedTable:
    """T1 — government contact directory: full name, gender, phone, state, agency."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            [
                "full_name",
                "gender",
                "phone",
                "state",
                Attribute("agency", AttributeRole.QUALITATIVE),
            ],
            name="T1_gov_contacts",
        )
    )
    batch: list[list[str]] = []
    for _ in range(rows):
        name, gender = _person_last_first(rng)
        phone, state = _phone_for(rng)
        agency = rng.choice(list(pools.AGENCIES))
        batch.append([name, gender, phone, state, agency])
    relation.append_rows(batch)
    errors: dict[CellRef, str] = {}
    errors.update(_dirty(rng, relation, "gender", dirt_rate, swap_pool=pools.GENDERS))
    errors.update(_dirty(rng, relation, "state", dirt_rate, swap_pool=pools.STATES))
    return GeneratedTable(
        name="T1",
        repository="GOV",
        description="Contact directory: first name determines gender, phone area code determines state",
        relation=relation,
        true_dependencies={
            dependency("full_name", "gender"),
            dependency("phone", "state"),
        },
        oracles={
            "first_name_gender": pools.first_name_gender_oracle(),
            "area_code_state": pools.area_code_state_oracle(),
        },
        error_cells=errors,
    )


def build_gov_addresses(rows: int = 600, seed: int = 2, dirt_rate: float = 0.02) -> GeneratedTable:
    """T2 — address registry: zip determines city and state via its prefix."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(["zip", "city", "state", "street"], name="T2_gov_addresses")
    )
    cities = sorted({city for city, _ in pools.ZIP_PREFIXES.values()})
    batch: list[list[str]] = []
    for _ in range(rows):
        zip_code, city, state = _zip_city_state(rng)
        street = f"{rng.randint(1, 9999)} {rng.choice(pools.LAST_NAMES)} St"
        batch.append([zip_code, city, state, street])
    relation.append_rows(batch)
    errors: dict[CellRef, str] = {}
    errors.update(_dirty(rng, relation, "city", dirt_rate))
    errors.update(_dirty(rng, relation, "state", dirt_rate, swap_pool=pools.STATES))
    return GeneratedTable(
        name="T2",
        repository="GOV",
        description="Addresses: zip prefix determines city and state",
        relation=relation,
        true_dependencies={
            dependency("zip", "city"),
            dependency("zip", "state"),
            dependency("city", "state"),
            dependency("city", "zip"),
        },
        oracles={
            "zip_prefix_city": pools.zip_prefix_city_oracle(),
            "zip_prefix_state": pools.zip_prefix_state_oracle(),
            "city_state": {city: state for _p, (city, state) in pools.ZIP_PREFIXES.items()},
        },
        error_cells=errors,
    )


def build_gov_employees(rows: int = 450, seed: int = 3, dirt_rate: float = 0.02) -> GeneratedTable:
    """T3 — employee register: the employee-ID prefix determines the department
    (the paper's introductory ``F-9-107`` example)."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(["employee_id", "department", "grade", "building"], name="T3_gov_employees")
    )
    batch: list[list[str]] = []
    for _ in range(rows):
        employee_id, department = _employee_id(rng)
        grade = rng.choice(list(pools.SALARY_GRADES))
        building = pools.DEPARTMENT_BUILDINGS.get(department, "Annex")
        batch.append([employee_id, department, grade, building])
    relation.append_rows(batch)
    errors = _dirty(
        rng, relation, "department", dirt_rate,
        swap_pool=sorted(set(pools.EMPLOYEE_ID_PREFIXES.values())),
    )
    return GeneratedTable(
        name="T3",
        repository="GOV",
        description="Employees: ID prefix letter determines department",
        relation=relation,
        true_dependencies={
            dependency("employee_id", "department"),
            dependency("department", "employee_id"),
            dependency("department", "building"),
            dependency("employee_id", "building"),
        },
        oracles={"id_prefix_department": dict(pools.EMPLOYEE_ID_PREFIXES)},
        error_cells=errors,
    )


def build_gov_facilities(rows: int = 500, seed: int = 4, dirt_rate: float = 0.02) -> GeneratedTable:
    """T4 — facility registry: fax area code determines the state."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(["facility", "fax", "state", "facility_type"], name="T4_gov_facilities")
    )
    facility_types = ("Laboratory", "Office", "Warehouse", "Data Center")
    batch: list[list[str]] = []
    for index in range(rows):
        fax, state = _phone_for(rng)
        facility = f"Facility {index:04d}"
        batch.append([facility, fax, state, rng.choice(facility_types)])
    relation.append_rows(batch)
    errors = _dirty(rng, relation, "state", dirt_rate, swap_pool=pools.STATES)
    return GeneratedTable(
        name="T4",
        repository="GOV",
        description="Facilities: fax area code determines state",
        relation=relation,
        true_dependencies={dependency("fax", "state")},
        oracles={"area_code_state": pools.area_code_state_oracle()},
        error_cells=errors,
    )


def build_gov_grants(rows: int = 450, seed: int = 5, dirt_rate: float = 0.02) -> GeneratedTable:
    """T5 — grants: grant-ID prefix determines the program; amount is a
    quantitative column the profiler must drop."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            [
                "grant_id",
                "program",
                "agency",
                Attribute("amount", AttributeRole.QUANTITATIVE),
                "year",
            ],
            name="T5_gov_grants",
        )
    )
    batch: list[list[str]] = []
    for _ in range(rows):
        grant_id, program = _grant_id(rng)
        agency = rng.choice(list(pools.AGENCIES))
        amount = f"{rng.randint(10, 500) * 1000}"
        year = grant_id.split("-")[1]
        batch.append([grant_id, program, agency, amount, year])
    relation.append_rows(batch)
    errors = _dirty(
        rng, relation, "program", dirt_rate,
        swap_pool=sorted(pools.GRANT_PROGRAMS.values()),
    )
    return GeneratedTable(
        name="T5",
        repository="GOV",
        description="Grants: grant-ID prefix determines program; year embedded in the ID",
        relation=relation,
        true_dependencies={
            dependency("grant_id", "program"),
            dependency("program", "grant_id"),
            dependency("grant_id", "year"),
        },
        oracles={"grant_prefix_program": dict(pools.GRANT_PROGRAMS)},
        error_cells=errors,
    )


# ---------------------------------------------------------------------------
# CHE repository (ChEMBL archetypes): T6–T10
# ---------------------------------------------------------------------------


def build_che_compounds(rows: int = 700, seed: int = 6, dirt_rate: float = 0.015) -> GeneratedTable:
    """T6 — compounds: CHEMBL identifiers, molecule types, development phase."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            ["molregno", "chembl_id", "molecule_type", "max_phase", "therapeutic_flag"],
            name="T6_che_compounds",
        )
    )
    batch: list[list[str]] = []
    for index in range(rows):
        molregno = str(100000 + index)
        chembl_id = f"CHEMBL{100000 + index}"
        molecule_type = rng.choice(pools.MOLECULE_TYPES)
        max_phase = str(rng.randint(0, 4))
        flag = "1" if max_phase == "4" or rng.random() < 0.2 else "0"
        batch.append([molregno, chembl_id, molecule_type, max_phase, flag])
    relation.append_rows(batch)
    errors = _dirty(rng, relation, "chembl_id", dirt_rate)
    return GeneratedTable(
        name="T6",
        repository="CHE",
        description="Compounds: molregno embedded in the CHEMBL identifier",
        relation=relation,
        true_dependencies={
            dependency("molregno", "chembl_id"),
            dependency("chembl_id", "molregno"),
        },
        oracles={},
        error_cells=errors,
    )


def build_che_targets(rows: int = 500, seed: int = 7, dirt_rate: float = 0.02) -> GeneratedTable:
    """T7 — protein targets: the pref_name family prefix determines the
    protein class description (the paper's T10 example)."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(["target_id", "pref_name", "protein_class_desc", "organism"], name="T7_che_targets")
    )
    organisms = ("Homo sapiens", "Rattus norvegicus", "Mus musculus")
    batch: list[list[str]] = []
    for index in range(rows):
        family = rng.choice(list(pools.PROTEIN_FAMILIES))
        subtype = rng.choice(("alpha", "beta", "gamma", "delta", "1", "2A", "3B", "4"))
        pref_name = f"{family} {subtype}"
        protein_class = f"{pools.PROTEIN_FAMILIES[family]} {subtype.lower()}"
        batch.append(
            [f"CHEMBL{200000 + index}", pref_name, protein_class, rng.choice(organisms)]
        )
    relation.append_rows(batch)
    errors = _dirty(rng, relation, "protein_class_desc", dirt_rate)
    return GeneratedTable(
        name="T7",
        repository="CHE",
        description="Targets: pref_name family prefix determines protein class",
        relation=relation,
        true_dependencies={
            dependency("pref_name", "protein_class_desc"),
            dependency("protein_class_desc", "pref_name"),
        },
        oracles={"family_protein_class": dict(pools.PROTEIN_FAMILIES)},
        error_cells=errors,
    )


def build_che_assays(rows: int = 600, seed: int = 8, dirt_rate: float = 0.02) -> GeneratedTable:
    """T8 — assays: the assay type code determines its description."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(["assay_id", "assay_type", "assay_desc", "confidence_score"], name="T8_che_assays")
    )
    batch: list[list[str]] = []
    for index in range(rows):
        code = rng.choice(list(pools.ASSAY_TYPES))
        description = f"{pools.ASSAY_TYPES[code]} assay {rng.randint(1, 30)}"
        batch.append(
            [f"A{300000 + index}", code, description, str(rng.randint(1, 9))]
        )
    relation.append_rows(batch)
    errors = _dirty(rng, relation, "assay_desc", dirt_rate)
    return GeneratedTable(
        name="T8",
        repository="CHE",
        description="Assays: assay type code determines the description prefix",
        relation=relation,
        true_dependencies={
            dependency("assay_type", "assay_desc"),
            dependency("assay_desc", "assay_type"),
        },
        oracles={"assay_type_desc": dict(pools.ASSAY_TYPES)},
        error_cells=errors,
    )


def build_che_activities(rows: int = 800, seed: int = 9, dirt_rate: float = 0.02) -> GeneratedTable:
    """T9 — activities: the standard type determines the measurement units;
    the numeric value column is quantitative."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            [
                "activity_id",
                "standard_type",
                "standard_units",
                Attribute("standard_value", AttributeRole.QUANTITATIVE),
                "assay_chembl_id",
            ],
            name="T9_che_activities",
        )
    )
    batch: list[list[str]] = []
    for index in range(rows):
        standard_type = rng.choice(list(pools.STANDARD_TYPES))
        units = pools.STANDARD_TYPES[standard_type]
        value = f"{rng.uniform(0.1, 10000):.2f}"
        batch.append(
            [str(400000 + index), standard_type, units, value, f"CHEMBL{rng.randint(300000, 300400)}"]
        )
    relation.append_rows(batch)
    errors = _dirty(
        rng, relation, "standard_units", dirt_rate,
        swap_pool=sorted(set(pools.STANDARD_TYPES.values())),
    )
    return GeneratedTable(
        name="T9",
        repository="CHE",
        description="Activities: standard type determines units",
        relation=relation,
        true_dependencies={dependency("standard_type", "standard_units")},
        oracles={"standard_type_units": dict(pools.STANDARD_TYPES)},
        error_cells=errors,
    )


def build_che_docs(rows: int = 450, seed: int = 10, dirt_rate: float = 0.02) -> GeneratedTable:
    """T10 — documents: journal determines its ISSN; DOIs embed the year."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(["doc_id", "journal", "issn", "year", "doi"], name="T10_che_docs")
    )
    batch: list[list[str]] = []
    for index in range(rows):
        journal = rng.choice(list(pools.JOURNALS))
        issn = pools.JOURNALS[journal]
        year = str(rng.randint(2005, 2019))
        doi = f"10.{rng.randint(1000, 9999)}/{year}.{rng.randint(100, 999)}"
        batch.append([f"D{500000 + index}", journal, issn, year, doi])
    relation.append_rows(batch)
    errors = _dirty(rng, relation, "issn", dirt_rate)
    return GeneratedTable(
        name="T10",
        repository="CHE",
        description="Documents: journal determines ISSN, DOI embeds the publication year",
        relation=relation,
        true_dependencies={
            dependency("journal", "issn"),
            dependency("issn", "journal"),
            dependency("doi", "year"),
        },
        oracles={"journal_issn": dict(pools.JOURNALS)},
        error_cells=errors,
    )


# ---------------------------------------------------------------------------
# UDW repository (university data warehouse archetypes): T11–T15
# ---------------------------------------------------------------------------


def build_udw_students(rows: int = 900, seed: int = 11, dirt_rate: float = 0.02) -> GeneratedTable:
    """T11 — students: first name determines gender, email domain determines campus."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            ["student_id", "full_name", "gender", "email", "campus", "major"],
            name="T11_udw_students",
        )
    )
    majors = sorted(pools.COURSE_DEPARTMENTS.values())
    batch: list[list[str]] = []
    for index in range(rows):
        name, gender = _person(rng)
        domain = rng.choice(list(pools.EMAIL_DOMAINS))
        campus = pools.EMAIL_DOMAINS[domain]
        user = name.split(" ")[0].lower() + str(rng.randint(1, 999))
        batch.append(
            [f"S{100000 + index}", name, gender, f"{user}@{domain}", campus, rng.choice(majors)]
        )
    relation.append_rows(batch)
    errors: dict[CellRef, str] = {}
    errors.update(_dirty(rng, relation, "gender", dirt_rate, swap_pool=pools.GENDERS))
    errors.update(_dirty(rng, relation, "campus", dirt_rate, swap_pool=sorted(pools.EMAIL_DOMAINS.values())))
    return GeneratedTable(
        name="T11",
        repository="UDW",
        description="Students: first name determines gender, email domain determines campus",
        relation=relation,
        true_dependencies={
            dependency("full_name", "gender"),
            dependency("email", "campus"),
        },
        oracles={
            "first_name_gender": pools.first_name_gender_oracle(),
            "email_domain_campus": dict(pools.EMAIL_DOMAINS),
        },
        error_cells=errors,
    )


def build_udw_courses(rows: int = 450, seed: int = 12, dirt_rate: float = 0.02) -> GeneratedTable:
    """T12 — courses: the course-code prefix determines the department and
    the course number band determines the level."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(["course_code", "department", "level", "credits"], name="T12_udw_courses")
    )
    batch: list[list[str]] = []
    for _ in range(rows):
        code, department, level = _course(rng)
        batch.append([code, department, level, str(rng.randint(1, 4))])
    relation.append_rows(batch)
    errors = _dirty(
        rng, relation, "department", dirt_rate,
        swap_pool=sorted(pools.COURSE_DEPARTMENTS.values()),
    )
    return GeneratedTable(
        name="T12",
        repository="UDW",
        description="Courses: course-code prefix determines department",
        relation=relation,
        true_dependencies={
            dependency("course_code", "department"),
            dependency("department", "course_code"),
            dependency("course_code", "level"),
        },
        oracles={"course_prefix_department": dict(pools.COURSE_DEPARTMENTS)},
        error_cells=errors,
    )


def build_udw_staff(rows: int = 500, seed: int = 13, dirt_rate: float = 0.02) -> GeneratedTable:
    """T13 — staff: name determines gender, office phone determines state,
    department determines building."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            ["staff_id", "full_name", "gender", "department", "office_phone", "state", "building"],
            name="T13_udw_staff",
        )
    )
    departments = sorted(pools.DEPARTMENT_BUILDINGS)
    batch: list[list[str]] = []
    for index in range(rows):
        name, gender = _person_last_first(rng)
        department = rng.choice(departments)
        phone, state = _phone_for(rng)
        building = pools.DEPARTMENT_BUILDINGS[department]
        batch.append(
            [f"E{20000 + index}", name, gender, department, phone, state, building]
        )
    relation.append_rows(batch)
    errors: dict[CellRef, str] = {}
    errors.update(_dirty(rng, relation, "gender", dirt_rate, swap_pool=pools.GENDERS))
    errors.update(_dirty(rng, relation, "building", dirt_rate))
    return GeneratedTable(
        name="T13",
        repository="UDW",
        description="Staff: name determines gender, phone area code determines state, department determines building",
        relation=relation,
        true_dependencies={
            dependency("full_name", "gender"),
            dependency("office_phone", "state"),
            dependency("department", "building"),
        },
        oracles={
            "first_name_gender": pools.first_name_gender_oracle(),
            "area_code_state": pools.area_code_state_oracle(),
            "department_building": dict(pools.DEPARTMENT_BUILDINGS),
        },
        error_cells=errors,
    )


def build_udw_alumni(rows: int = 800, seed: int = 14, dirt_rate: float = 0.02) -> GeneratedTable:
    """T14 — alumni: name determines gender, zip determines city and state."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            ["alum_id", "full_name", "gender", "grad_year", "zip", "city", "state"],
            name="T14_udw_alumni",
        )
    )
    batch: list[list[str]] = []
    for index in range(rows):
        name, gender = _person(rng)
        zip_code, city, state = _zip_city_state(rng)
        batch.append(
            [f"AL{30000 + index}", name, gender, str(rng.randint(1980, 2020)), zip_code, city, state]
        )
    relation.append_rows(batch)
    errors: dict[CellRef, str] = {}
    errors.update(_dirty(rng, relation, "gender", dirt_rate, swap_pool=pools.GENDERS))
    errors.update(_dirty(rng, relation, "city", dirt_rate))
    errors.update(_dirty(rng, relation, "state", dirt_rate, swap_pool=pools.STATES))
    return GeneratedTable(
        name="T14",
        repository="UDW",
        description="Alumni: name determines gender, zip prefix determines city and state",
        relation=relation,
        true_dependencies={
            dependency("full_name", "gender"),
            dependency("zip", "city"),
            dependency("zip", "state"),
            dependency("city", "state"),
            dependency("city", "zip"),
        },
        oracles={
            "first_name_gender": pools.first_name_gender_oracle(),
            "zip_prefix_city": pools.zip_prefix_city_oracle(),
            "zip_prefix_state": pools.zip_prefix_state_oracle(),
        },
        error_cells=errors,
    )


def build_udw_payroll(rows: int = 500, seed: int = 15, dirt_rate: float = 0.02) -> GeneratedTable:
    """T15 — payroll: employee-ID prefix determines department, fax area code
    determines state; salary is quantitative."""
    rng = random.Random(seed)
    relation = Relation(
        Schema(
            [
                "employee_id",
                "department",
                "grade",
                Attribute("salary", AttributeRole.QUANTITATIVE),
                "fax",
                "state",
            ],
            name="T15_udw_payroll",
        )
    )
    batch: list[list[str]] = []
    for _ in range(rows):
        employee_id, department = _employee_id(rng)
        grade = rng.choice(list(pools.SALARY_GRADES))
        low, high = pools.SALARY_GRADES[grade]
        salary = str(rng.randint(low, high))
        fax, state = _phone_for(rng)
        batch.append([employee_id, department, grade, salary, fax, state])
    relation.append_rows(batch)
    errors: dict[CellRef, str] = {}
    errors.update(
        _dirty(rng, relation, "department", dirt_rate,
               swap_pool=sorted(set(pools.EMPLOYEE_ID_PREFIXES.values())))
    )
    errors.update(_dirty(rng, relation, "state", dirt_rate, swap_pool=pools.STATES))
    return GeneratedTable(
        name="T15",
        repository="UDW",
        description="Payroll: employee-ID prefix determines department, fax area code determines state",
        relation=relation,
        true_dependencies={
            dependency("employee_id", "department"),
            dependency("fax", "state"),
        },
        oracles={
            "id_prefix_department": dict(pools.EMPLOYEE_ID_PREFIXES),
            "area_code_state": pools.area_code_state_oracle(),
        },
        error_cells=errors,
    )


# ---------------------------------------------------------------------------
# Focused helper tables used by examples and the controlled experiments
# ---------------------------------------------------------------------------


def build_zip_state_table(rows: int = 920, seed: int = 42) -> GeneratedTable:
    """A clean Zip -> State table mirroring the controlled evaluation of
    Section 5.3 (924 records, 27 states in the original)."""
    rng = random.Random(seed)
    relation = Relation(Schema(["zip", "state"], name="ZipState"))
    batch: list[list[str]] = []
    for _ in range(rows):
        zip_code, _city, state = _zip_city_state(rng)
        batch.append([zip_code, state])
    relation.append_rows(batch)
    return GeneratedTable(
        name="ZipState",
        repository="GOV",
        description="Controlled-evaluation table: zip prefix determines state",
        relation=relation,
        true_dependencies={dependency("zip", "state")},
        oracles={"zip_prefix_state": pools.zip_prefix_state_oracle()},
        error_cells={},
    )


def build_name_gender_table(rows: int = 600, seed: int = 43, dirt_rate: float = 0.0) -> GeneratedTable:
    """A Full Name -> Gender table in ``Last, First`` format (Table 3 / 8)."""
    rng = random.Random(seed)
    relation = Relation(Schema(["full_name", "gender"], name="NameGender"))
    batch: list[list[str]] = []
    for _ in range(rows):
        name, gender = _person_last_first(rng)
        batch.append([name, gender])
    relation.append_rows(batch)
    errors = _dirty(rng, relation, "gender", dirt_rate, swap_pool=pools.GENDERS)
    return GeneratedTable(
        name="NameGender",
        repository="UDW",
        description="Full name (Last, First) determines gender through the first-name token",
        relation=relation,
        true_dependencies={dependency("full_name", "gender")},
        oracles={"first_name_gender": pools.first_name_gender_oracle()},
        error_cells=errors,
    )
