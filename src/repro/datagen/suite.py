"""The 15-table benchmark suite (the stand-in for the paper's GOV/CHE/UDW
tables) plus helpers to materialize it to CSV.

``benchmark_suite(scale=...)`` returns the fifteen :class:`GeneratedTable`
objects keyed ``T1`` … ``T15``.  ``scale`` multiplies every table's row
count, so experiments can be run at laptop speed (``scale=0.25``) or closer
to the paper's sizes (``scale=5``) without touching the generators.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional

from ..dataset.csvio import write_csv
from .generators import (
    GeneratedTable,
    _scaled,
    build_che_activities,
    build_che_assays,
    build_che_compounds,
    build_che_docs,
    build_che_targets,
    build_gov_addresses,
    build_gov_contacts,
    build_gov_employees,
    build_gov_facilities,
    build_gov_grants,
    build_udw_alumni,
    build_udw_courses,
    build_udw_payroll,
    build_udw_staff,
    build_udw_students,
)

#: Table id -> (builder, base row count).
_SUITE_SPEC: dict[str, tuple[Callable[..., GeneratedTable], int]] = {
    "T1": (build_gov_contacts, 800),
    "T2": (build_gov_addresses, 600),
    "T3": (build_gov_employees, 450),
    "T4": (build_gov_facilities, 500),
    "T5": (build_gov_grants, 450),
    "T6": (build_che_compounds, 700),
    "T7": (build_che_targets, 500),
    "T8": (build_che_assays, 600),
    "T9": (build_che_activities, 800),
    "T10": (build_che_docs, 450),
    "T11": (build_udw_students, 900),
    "T12": (build_udw_courses, 450),
    "T13": (build_udw_staff, 500),
    "T14": (build_udw_alumni, 800),
    "T15": (build_udw_payroll, 500),
}

TABLE_IDS: tuple[str, ...] = tuple(_SUITE_SPEC)


def build_table(
    table_id: str,
    scale: float = 1.0,
    seed_offset: int = 0,
    dirt_rate: Optional[float] = None,
) -> GeneratedTable:
    """Build a single suite table by id (``"T1"`` … ``"T15"``)."""
    builder, base_rows = _SUITE_SPEC[table_id]
    kwargs = {"rows": _scaled(base_rows, scale), "seed": int(table_id[1:]) + seed_offset}
    if dirt_rate is not None:
        kwargs["dirt_rate"] = dirt_rate
    return builder(**kwargs)


def benchmark_suite(
    scale: float = 1.0,
    seed_offset: int = 0,
    dirt_rate: Optional[float] = None,
    table_ids: Optional[tuple[str, ...]] = None,
) -> dict[str, GeneratedTable]:
    """Build the full 15-table suite (or a subset via ``table_ids``)."""
    selected = table_ids or TABLE_IDS
    return {
        table_id: build_table(table_id, scale=scale, seed_offset=seed_offset, dirt_rate=dirt_rate)
        for table_id in selected
    }


def materialize_suite(directory: str | Path, scale: float = 1.0) -> list[Path]:
    """Write every suite table to ``directory`` as CSV; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for table_id, table in benchmark_suite(scale=scale).items():
        path = directory / f"{table_id.lower()}_{table.relation.name}.csv"
        write_csv(table.relation, path)
        paths.append(path)
    return paths
