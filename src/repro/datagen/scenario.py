"""Schema-driven scenario specs: declarative synthetic workloads.

A :class:`ScenarioSpec` replaces hand-rolled generator functions with a
declarative description of a table and its workload: columns (pattern
templates or explicit domains, distinct-value cardinality, zipf skew,
functional links between columns), an error-injection profile, a row scale,
and a CRUD op-mix.  One spec drives three things:

- :meth:`ScenarioSpec.build` — a deterministic
  :class:`~repro.datagen.generators.GeneratedTable` (relation + ground-truth
  dependencies + seeded dirty cells);
- :meth:`ScenarioSpec.mutation_stream` — an endless deterministic stream of
  :class:`~repro.dataset.mutations.MutationBatch` objects mixing updates,
  appends, and deletes in the spec's proportions (the update-heavy stream
  benchmark and the CI smoke leg both consume this);
- the scenario matrix — :data:`SCENARIO_MATRIX` names four canonical shapes
  (tall-narrow, wide-sparse, high-cardinality, adversarial free-start) the
  scenario tests sweep.

Specs are plain dicts (JSON-native); YAML loading is available when PyYAML
is installed (:func:`load_scenario` accepts ``.json``, ``.yaml``, ``.yml``).

Pattern templates use ``#`` for a random digit and ``@`` for a random
uppercase letter; every other character is literal.  A column with
``determined_by`` draws its value from a deterministic mapping keyed on the
determinant's value (or its first ``key_prefix`` characters), so the
embedded dependency genuinely holds before error injection.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Union

from ..constraints.base import CellRef
from ..dataset.mutations import DeleteOp, MutationBatch, UpdateOp, UpsertOp
from ..dataset.relation import Relation
from ..dataset.schema import Attribute, AttributeRole, Schema
from ..exceptions import ReproError
from .generators import GeneratedTable, _typo, dependency

_DIGITS = "0123456789"
_LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclasses.dataclass(frozen=True)
class ColumnSpec:
    """One column of a scenario table.

    Exactly one of ``pattern`` / ``domain`` supplies values.  A column with
    ``determined_by`` is functionally determined by that column: its value is
    a deterministic function of the determinant's value (truncated to
    ``key_prefix`` characters when set, which makes the dependency a *pattern*
    dependency on the determinant's prefix rather than a plain FD).
    """

    name: str
    pattern: Optional[str] = None
    domain: Optional[tuple[str, ...]] = None
    cardinality: int = 20
    skew: float = 0.0
    determined_by: Optional[str] = None
    key_prefix: Optional[int] = None
    role: str = "mixed"

    def __post_init__(self):
        if self.domain is not None:
            object.__setattr__(self, "domain", tuple(str(v) for v in self.domain))
        if self.pattern is None and self.domain is None:
            raise ReproError(f"column {self.name!r} needs a 'pattern' or a 'domain'")
        if self.pattern is not None and self.domain is not None:
            raise ReproError(f"column {self.name!r} has both 'pattern' and 'domain'")
        if self.cardinality < 1:
            raise ReproError(f"column {self.name!r} cardinality must be >= 1")
        if self.skew < 0:
            raise ReproError(f"column {self.name!r} skew must be >= 0")

    def attribute(self) -> Union[str, Attribute]:
        if self.role == "mixed":
            return self.name
        try:
            return Attribute(self.name, AttributeRole(self.role))
        except ValueError:
            raise ReproError(
                f"column {self.name!r} role {self.role!r} is not an AttributeRole"
            ) from None


@dataclasses.dataclass(frozen=True)
class ErrorProfile:
    """How much dirt to inject and where.

    ``rate`` is the per-row probability of corrupting one cell; ``columns``
    restricts the candidates (default: every non-determinant column).  Kinds:
    ``typo`` perturbs characters, ``swap`` replaces with another value from
    the column's pool.
    """

    rate: float = 0.0
    columns: Optional[tuple[str, ...]] = None
    kind: str = "typo"

    def __post_init__(self):
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError("error rate must be in [0, 1]")
        if self.kind not in ("typo", "swap"):
            raise ReproError(f"error kind must be 'typo' or 'swap', got {self.kind!r}")


@dataclasses.dataclass(frozen=True)
class OpMix:
    """CRUD proportions for the mutation stream (normalized on use)."""

    update: float = 1.0
    append: float = 0.0
    delete: float = 0.0

    def __post_init__(self):
        if min(self.update, self.append, self.delete) < 0:
            raise ReproError("op-mix weights must be >= 0")
        if self.update + self.append + self.delete <= 0:
            raise ReproError("op-mix weights must not all be zero")

    def weights(self) -> tuple[float, float, float]:
        total = self.update + self.append + self.delete
        return (self.update / total, self.append / total, self.delete / total)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A declarative table + workload description (see module docstring)."""

    name: str
    columns: tuple[ColumnSpec, ...]
    rows: int = 500
    seed: int = 0
    errors: ErrorProfile = dataclasses.field(default_factory=ErrorProfile)
    mix: OpMix = dataclasses.field(default_factory=OpMix)
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "columns", tuple(self.columns))
        if not self.columns:
            raise ReproError(f"scenario {self.name!r} needs at least one column")
        if self.rows < 1:
            raise ReproError(f"scenario {self.name!r} needs rows >= 1")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise ReproError(f"scenario {self.name!r} has duplicate column names")
        known = set(names)
        for column in self.columns:
            if column.determined_by is not None:
                if column.determined_by not in known:
                    raise ReproError(
                        f"column {column.name!r} is determined by unknown column "
                        f"{column.determined_by!r}"
                    )
                if column.determined_by == column.name:
                    raise ReproError(f"column {column.name!r} cannot determine itself")

    # -- dict / YAML round-trip ----------------------------------------------

    @classmethod
    def from_dict(cls, document: Mapping) -> "ScenarioSpec":
        if not isinstance(document, Mapping):
            raise ReproError("a scenario spec must be a mapping")
        unknown = set(document) - {
            "name", "columns", "rows", "seed", "errors", "mix", "description",
        }
        if unknown:
            raise ReproError(f"unknown scenario keys: {sorted(unknown)}")
        raw_columns = document.get("columns")
        if not isinstance(raw_columns, Sequence) or isinstance(raw_columns, (str, bytes)):
            raise ReproError("'columns' must be a list of column specs")
        columns = []
        for entry in raw_columns:
            if not isinstance(entry, Mapping):
                raise ReproError(f"each column spec must be a mapping, got {entry!r}")
            fields = {field.name for field in dataclasses.fields(ColumnSpec)}
            extra = set(entry) - fields
            if extra:
                raise ReproError(f"unknown column keys: {sorted(extra)}")
            if "domain" in entry and entry["domain"] is not None:
                entry = {**entry, "domain": tuple(entry["domain"])}
            columns.append(ColumnSpec(**entry))
        errors = document.get("errors") or {}
        mix = document.get("mix") or {}
        return cls(
            name=str(document.get("name") or "scenario"),
            columns=tuple(columns),
            rows=int(document.get("rows", 500)),
            seed=int(document.get("seed", 0)),
            errors=errors if isinstance(errors, ErrorProfile) else ErrorProfile(**errors),
            mix=mix if isinstance(mix, OpMix) else OpMix(**mix),
            description=str(document.get("description", "")),
        )

    def to_dict(self) -> dict:
        document = {
            "name": self.name,
            "description": self.description,
            "rows": self.rows,
            "seed": self.seed,
            "columns": [
                {
                    key: (list(value) if isinstance(value, tuple) else value)
                    for key, value in dataclasses.asdict(column).items()
                    if value is not None and (key, value) not in (
                        ("cardinality", 20), ("skew", 0.0), ("role", "mixed"),
                    )
                }
                for column in self.columns
            ],
            "errors": dataclasses.asdict(self.errors),
            "mix": dataclasses.asdict(self.mix),
        }
        if self.errors.columns is not None:
            document["errors"]["columns"] = list(self.errors.columns)
        return document

    # -- generation ------------------------------------------------------------

    def _pools(self, rng: random.Random) -> dict[str, list[str]]:
        """Distinct value pools per column, deterministic in the seed."""
        pools: dict[str, list[str]] = {}
        for column in self.columns:
            if column.domain is not None:
                pools[column.name] = list(column.domain)
                continue
            seen: dict[str, None] = {}
            attempts = 0
            limit = max(1000, column.cardinality * 50)
            while len(seen) < column.cardinality and attempts < limit:
                seen.setdefault(_fill_pattern(rng, column.pattern or ""), None)
                attempts += 1
            pools[column.name] = list(seen)
        return pools

    def _mappings(
        self, rng: random.Random, pools: dict[str, list[str]]
    ) -> dict[str, dict[str, str]]:
        """determinant-key -> value mapping for each determined column."""
        mappings: dict[str, dict[str, str]] = {}
        for column in self.columns:
            if column.determined_by is None:
                continue
            mapping: dict[str, str] = {}
            for value in pools[column.determined_by]:
                key = value[: column.key_prefix] if column.key_prefix else value
                if key not in mapping:
                    mapping[key] = rng.choice(pools[column.name])
            mappings[column.name] = mapping
        return mappings

    def _draw_row(
        self,
        rng: random.Random,
        pools: dict[str, list[str]],
        mappings: dict[str, dict[str, str]],
    ) -> list[str]:
        """One dependency-consistent row (determined columns follow their map)."""
        values: dict[str, str] = {}
        for column in self.columns:
            if column.determined_by is not None:
                continue
            values[column.name] = _skewed_choice(rng, pools[column.name], column.skew)
        # Determined columns may chain (a determined column determining
        # another); resolve until fixpoint — the validated DAG guarantees
        # progress.
        pending = [c for c in self.columns if c.determined_by is not None]
        while pending:
            remaining = []
            for column in pending:
                source = values.get(column.determined_by or "")
                if source is None:
                    remaining.append(column)
                    continue
                key = source[: column.key_prefix] if column.key_prefix else source
                mapping = mappings[column.name]
                if key not in mapping:
                    mapping[key] = rng.choice(pools[column.name])
                values[column.name] = mapping[key]
            if len(remaining) == len(pending):
                raise ReproError(
                    f"scenario {self.name!r} has a determined-by cycle among "
                    f"{sorted(c.name for c in remaining)}"
                )
            pending = remaining
        return [values[column.name] for column in self.columns]

    def _corrupt(
        self, rng: random.Random, row: list[str], pools: dict[str, list[str]]
    ) -> Optional[tuple[int, str, str]]:
        """Maybe corrupt one cell; returns (column index, dirty, original)."""
        if rng.random() >= self.errors.rate:
            return None
        candidates = self.errors.columns
        if candidates is None:
            candidates = tuple(
                column.name for column in self.columns if column.determined_by is not None
            ) or tuple(column.name for column in self.columns)
        index = self._column_index(rng.choice(list(candidates)))
        original = row[index]
        if self.errors.kind == "swap":
            pool = [v for v in pools[self.columns[index].name] if v != original]
            dirty = rng.choice(pool) if pool else _typo(rng, original)
        else:
            dirty = _typo(rng, original)
        if dirty == original:
            dirty = original + "x"
        return (index, dirty, original)

    def _column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise ReproError(f"scenario {self.name!r} has no column {name!r}")

    def build(self, scale: float = 1.0, backend: Optional[str] = None) -> GeneratedTable:
        """Materialize the scenario as a :class:`GeneratedTable`."""
        rng = random.Random(self.seed)
        pools = self._pools(rng)
        mappings = self._mappings(rng, pools)
        row_count = max(1, int(round(self.rows * scale)))
        schema = Schema([column.attribute() for column in self.columns], name=self.name)
        relation = Relation(schema, backend=backend)
        rows = []
        errors: dict[CellRef, str] = {}
        for row_id in range(row_count):
            row = self._draw_row(rng, pools, mappings)
            corruption = self._corrupt(rng, row, pools)
            if corruption is not None:
                index, dirty, original = corruption
                row[index] = dirty
                errors[CellRef(row_id, self.columns[index].name)] = original
            rows.append(row)
        relation.append_rows(rows)
        true_dependencies = {
            dependency(column.determined_by, column.name)
            for column in self.columns
            if column.determined_by is not None
        }
        return GeneratedTable(
            name=self.name,
            repository="SCN",
            description=self.description or f"scenario {self.name}",
            relation=relation,
            true_dependencies=true_dependencies,
            oracles={},
            error_cells=errors,
        )

    # -- mutation stream -------------------------------------------------------

    def mutation_stream(
        self,
        relation: Relation,
        operations: int,
        batch_size: int = 1,
        seed: Optional[int] = None,
    ) -> Iterator[MutationBatch]:
        """Yield deterministic CRUD batches in the spec's op-mix proportions.

        Updates rewrite a random live row with fresh dependency-consistent
        values (dirtied at the spec's error rate), appends add fresh rows,
        deletes tombstone live rows.  Deleted rows never come back into the
        target pool.  ``operations`` counts individual ops; they are grouped
        into batches of ``batch_size``.
        """
        if operations < 1:
            raise ReproError("mutation_stream needs operations >= 1")
        if batch_size < 1:
            raise ReproError("mutation_stream needs batch_size >= 1")
        rng = random.Random(self.seed + 1 if seed is None else seed)
        # Replay build()'s rng sequence so pools and determinant mappings are
        # the ones the built table actually used — a clean stream must stay
        # consistent with the existing rows.
        setup = random.Random(self.seed)
        pools = self._pools(setup)
        mappings = self._mappings(setup, pools)
        live = [r for r in range(relation.row_count) if r not in relation.deleted_rows]
        next_row = relation.row_count
        update_w, append_w, delete_w = self.mix.weights()
        emitted = 0
        while emitted < operations:
            ops = []
            for _ in range(min(batch_size, operations - emitted)):
                roll = rng.random()
                if (roll < update_w or not append_w + delete_w) and live:
                    row_id = rng.choice(live)
                    row = self._draw_row(rng, pools, mappings)
                    corruption = self._corrupt(rng, row, pools)
                    if corruption is not None:
                        index, dirty, _original = corruption
                        row[index] = dirty
                    ops.append(UpdateOp(
                        row_id,
                        tuple(zip((c.name for c in self.columns), row)),
                    ))
                elif roll < update_w + append_w or not live:
                    row = self._draw_row(rng, pools, mappings)
                    corruption = self._corrupt(rng, row, pools)
                    if corruption is not None:
                        index, dirty, _original = corruption
                        row[index] = dirty
                    ops.append(UpsertOp((row,)))
                    live.append(next_row)
                    next_row += 1
                else:
                    victim = live.pop(rng.randrange(len(live)))
                    ops.append(DeleteOp((victim,)))
                emitted += 1
            yield MutationBatch(ops)


# ---------------------------------------------------------------------------
# Loading from files
# ---------------------------------------------------------------------------


def scenario_from_yaml(text: str) -> ScenarioSpec:
    """Parse a YAML scenario spec (requires PyYAML; JSON is always available)."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - environment-dependent
        raise ReproError(
            "YAML scenario specs need PyYAML; install it or use JSON"
        ) from None
    document = yaml.safe_load(text)
    if not isinstance(document, Mapping):
        raise ReproError("a YAML scenario spec must be a mapping at top level")
    return ScenarioSpec.from_dict(document)


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load a scenario spec from a ``.json`` / ``.yaml`` / ``.yml`` file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".yaml", ".yml"):
        return scenario_from_yaml(text)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(f"scenario file {path} is not valid JSON: {error}")
    return ScenarioSpec.from_dict(document)


# ---------------------------------------------------------------------------
# The canonical scenario matrix
# ---------------------------------------------------------------------------

#: Four canonical table shapes the scenario tests sweep.  All are
#: update-heavy (70/20/10) so the delta paths get exercised by default.
SCENARIO_MATRIX: dict[str, ScenarioSpec] = {
    "tall_narrow": ScenarioSpec(
        name="tall_narrow",
        description="Many rows, two columns, strong prefix dependency",
        rows=1200,
        seed=101,
        columns=(
            ColumnSpec(name="code", pattern="@@###", cardinality=120, skew=0.6),
            ColumnSpec(name="region", pattern="R-#", cardinality=8,
                       determined_by="code", key_prefix=2),
        ),
        errors=ErrorProfile(rate=0.02, kind="swap"),
        mix=OpMix(update=0.7, append=0.2, delete=0.1),
    ),
    "wide_sparse": ScenarioSpec(
        name="wide_sparse",
        description="Eight columns, low cardinality, several independent FDs",
        rows=400,
        seed=102,
        columns=(
            ColumnSpec(name="dept", pattern="@@@", cardinality=6),
            ColumnSpec(name="floor", pattern="F#", cardinality=4, determined_by="dept"),
            ColumnSpec(name="badge", pattern="B-####", cardinality=350),
            ColumnSpec(name="shift", domain=("day", "night", "swing")),
            ColumnSpec(name="site", pattern="S##", cardinality=5, determined_by="shift"),
            ColumnSpec(name="grade", domain=("G1", "G2", "G3", "G4"), skew=1.0),
            ColumnSpec(name="status", domain=("active", "leave")),
            ColumnSpec(name="pay_band", pattern="P#", cardinality=4, determined_by="grade"),
        ),
        errors=ErrorProfile(rate=0.03, kind="swap"),
        mix=OpMix(update=0.7, append=0.2, delete=0.1),
    ),
    "high_cardinality": ScenarioSpec(
        name="high_cardinality",
        description="Near-key determinant column: many tiny partition classes",
        rows=800,
        seed=103,
        columns=(
            ColumnSpec(name="serial", pattern="@@-#####", cardinality=700),
            ColumnSpec(name="line", pattern="L#", cardinality=9,
                       determined_by="serial", key_prefix=2),
            ColumnSpec(name="qa", domain=("pass", "fail"), skew=1.5),
        ),
        errors=ErrorProfile(rate=0.015, kind="typo"),
        mix=OpMix(update=0.7, append=0.2, delete=0.1),
    ),
    "adversarial_free_start": ScenarioSpec(
        name="adversarial_free_start",
        description="Shared suffixes and typo dirt: patterns cannot anchor at 0",
        rows=600,
        seed=104,
        columns=(
            ColumnSpec(name="tag", pattern="###-@@X", cardinality=200, skew=0.8),
            ColumnSpec(name="bucket", pattern="K#", cardinality=6,
                       determined_by="tag", key_prefix=3),
            ColumnSpec(name="note", pattern="@#@#@", cardinality=500),
        ),
        errors=ErrorProfile(rate=0.04, kind="typo"),
        mix=OpMix(update=0.7, append=0.2, delete=0.1),
    ),
}


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _fill_pattern(rng: random.Random, template: str) -> str:
    out = []
    for char in template:
        if char == "#":
            out.append(rng.choice(_DIGITS))
        elif char == "@":
            out.append(rng.choice(_LETTERS))
        else:
            out.append(char)
    return "".join(out)


def _skewed_choice(rng: random.Random, pool: Sequence[str], skew: float) -> str:
    if skew <= 0 or len(pool) == 1:
        return rng.choice(pool)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=1)[0]
