"""Deterministic value pools used by the synthetic dataset generators.

The paper evaluates on 15 proprietary tables from data.gov, ChEMBL, and a
university data warehouse.  Those tables are not redistributable, so the
generators in :mod:`repro.datagen.generators` synthesize tables with the same
*structural* regularities: gendered first names, zip prefixes that determine
cities and states, telephone area codes that determine states, coded
identifiers whose prefixes determine departments, and so on.  This module is
the single place where those ground-truth mappings live — the generators draw
values from here and also export the mappings as validation oracles.
"""

from __future__ import annotations

#: First names with the gender they determine (the paper's name -> gender
#: dependency; a couple of unisex names are kept out of this dict on purpose
#: and listed separately so tests can exercise the false-positive discussion
#: of Section 2.2).
MALE_FIRST_NAMES: tuple[str, ...] = (
    "John", "David", "Michael", "James", "Robert", "William", "Richard",
    "Joseph", "Thomas", "Charles", "Daniel", "Matthew", "Anthony", "Donald",
    "Mark", "Paul", "Steven", "Andrew", "Kenneth", "George", "Jerry", "Alan",
    "Tayseer", "Omar", "Ahmed", "Carlos", "Luis", "Wei", "Hiroshi", "Ivan",
)

FEMALE_FIRST_NAMES: tuple[str, ...] = (
    "Susan", "Mary", "Patricia", "Jennifer", "Linda", "Elizabeth", "Barbara",
    "Jessica", "Sarah", "Karen", "Nancy", "Lisa", "Margaret", "Sandra",
    "Stacey", "Ashley", "Emily", "Donna", "Michelle", "Carol", "Amanda",
    "Dorothy", "Fatima", "Aisha", "Maria", "Sofia", "Mei", "Yuki", "Olga",
    "Noor",
)

#: Names that legitimately map to either gender; used to exercise the
#: "generalization is a double-edged sword" discussion.
UNISEX_FIRST_NAMES: tuple[str, ...] = ("Kim", "Jordan", "Casey", "Taylor")

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Holloway", "Kimbell", "Mallack", "Otillio", "Boyle", "Orlean", "Charles",
    "Bosco", "Fahmi", "Qasem", "Salem", "Saeed", "Wagdi", "Shadi", "Hisham",
)

#: gender codes used across the suite
GENDERS: tuple[str, ...] = ("M", "F")

#: Zip prefix (first three digits) -> (city, state).  Matches the real US
#: prefix allocations closely enough that the shapes in Table 3 reproduce
#: (900xx Los Angeles CA, 606xx Chicago IL, 100xx New York NY, ...).
ZIP_PREFIXES: dict[str, tuple[str, str]] = {
    "900": ("Los Angeles", "CA"),
    "941": ("San Francisco", "CA"),
    "606": ("Chicago", "IL"),
    "100": ("New York", "NY"),
    "021": ("Boston", "MA"),
    "770": ("Houston", "TX"),
    "331": ("Miami", "FL"),
    "850": ("Tallahassee", "FL"),
    "191": ("Philadelphia", "PA"),
    "980": ("Seattle", "WA"),
    "303": ("Atlanta", "GA"),
    "852": ("Phoenix", "AZ"),
    "956": ("Sacramento", "CA"),
    "432": ("Columbus", "OH"),
    "462": ("Indianapolis", "IN"),
    "802": ("Denver", "CO"),
    "972": ("Portland", "OR"),
    "891": ("Las Vegas", "NV"),
    "museum": ("", ""),  # placeholder removed below; never emitted
}
ZIP_PREFIXES.pop("museum")

#: Telephone / fax area code -> state (Table 3's phone-number -> state PFDs).
#: Every state has at least two area codes so that the reverse dependency
#: (state -> area code) genuinely does not hold, as in the real world.
AREA_CODES: dict[str, str] = {
    "850": "FL", "607": "NY", "404": "GA", "217": "IL", "860": "CT",
    "213": "CA", "312": "IL", "212": "NY", "617": "MA", "713": "TX",
    "305": "FL", "215": "PA", "206": "WA", "602": "AZ", "614": "OH",
    "317": "IN", "303": "CO", "503": "OR", "702": "NV", "916": "CA",
    "470": "GA", "203": "CT", "413": "MA", "512": "TX", "717": "PA",
    "509": "WA", "520": "AZ", "440": "OH", "812": "IN", "719": "CO",
    "541": "OR", "775": "NV",
}

#: US state abbreviations used when drawing noise values.
STATES: tuple[str, ...] = tuple(sorted({state for state in AREA_CODES.values()} | {
    "OK", "TX", "SC", "MI", "MN", "WI", "MO", "KY", "AL", "VA",
}))

#: Employee-ID prefix -> department (the paper's introductory F-9-107 example:
#: the leading letter determines the Finance department).
EMPLOYEE_ID_PREFIXES: dict[str, str] = {
    "F": "Finance",
    "H": "Human Resources",
    "E": "Engineering",
    "M": "Marketing",
    "L": "Legal",
    "O": "Operations",
    "R": "Research",
    "S": "Sales",
}

#: Grant-ID program prefixes for the data.gov-style grants table.
GRANT_PROGRAMS: dict[str, str] = {
    "EDU": "Education",
    "ENV": "Environment",
    "HLT": "Health",
    "TRN": "Transportation",
    "AGR": "Agriculture",
    "DEF": "Defense",
}

#: Agency codes for data.gov-style tables.
AGENCIES: dict[str, str] = {
    "EPA": "Environmental Protection Agency",
    "DOT": "Department of Transportation",
    "HHS": "Health and Human Services",
    "DOE": "Department of Energy",
    "USDA": "Department of Agriculture",
    "DOD": "Department of Defense",
}

#: ChEMBL-style protein target families: pref_name prefix -> protein class.
PROTEIN_FAMILIES: dict[str, str] = {
    "Nicotinic acetylcholine receptor": "ion channel lgic ach chrn",
    "Dopamine receptor": "membrane receptor 7tm1 monoamine",
    "Serotonin receptor": "membrane receptor 7tm1 monoamine",
    "Cytochrome P450": "enzyme cytochrome p450",
    "Carbonic anhydrase": "enzyme lyase",
    "Tyrosine-protein kinase": "enzyme kinase protein tyrosine",
    "Sodium channel": "ion channel vgc sodium",
    "Histone deacetylase": "enzyme eraser hdac",
}

#: Molecule types and assay types for the ChEMBL-style tables.
MOLECULE_TYPES: tuple[str, ...] = ("Small molecule", "Protein", "Antibody", "Oligonucleotide")
ASSAY_TYPES: dict[str, str] = {
    "B": "Binding",
    "F": "Functional",
    "A": "ADMET",
    "T": "Toxicity",
}
STANDARD_TYPES: dict[str, str] = {
    "IC50": "nM",
    "Ki": "nM",
    "EC50": "nM",
    "Potency": "nM",
    "Inhibition": "%",
    "Activity": "%",
}

#: Journals for the ChEMBL documents table: journal -> ISSN prefix.
JOURNALS: dict[str, str] = {
    "J. Med. Chem.": "0022-2623",
    "Bioorg. Med. Chem. Lett.": "0960-894X",
    "Eur. J. Med. Chem.": "0223-5234",
    "ACS Med. Chem. Lett.": "1948-5875",
    "MedChemComm": "2040-2503",
}

#: University course prefixes -> department, and level bands.
COURSE_DEPARTMENTS: dict[str, str] = {
    "CS": "Computer Science",
    "EE": "Electrical Engineering",
    "ME": "Mechanical Engineering",
    "BIO": "Biology",
    "CHEM": "Chemistry",
    "MATH": "Mathematics",
    "HIST": "History",
    "ECON": "Economics",
    "PSY": "Psychology",
}

#: Email domain -> campus for the university tables.
EMAIL_DOMAINS: dict[str, str] = {
    "main.univ.edu": "Main Campus",
    "med.univ.edu": "Medical Campus",
    "law.univ.edu": "Law School",
    "biz.univ.edu": "Business School",
}

#: Department -> building (university staff/payroll tables).
DEPARTMENT_BUILDINGS: dict[str, str] = {
    "Computer Science": "Turing Hall",
    "Electrical Engineering": "Maxwell Hall",
    "Mechanical Engineering": "Watt Hall",
    "Biology": "Darwin Hall",
    "Chemistry": "Curie Hall",
    "Mathematics": "Gauss Hall",
    "History": "Herodotus Hall",
    "Economics": "Keynes Hall",
    "Psychology": "James Hall",
    "Finance": "Ledger Hall",
    "Human Resources": "People Hall",
}

#: Salary grades -> salary bands (quantitative column driver).
SALARY_GRADES: dict[str, tuple[int, int]] = {
    "G1": (30_000, 45_000),
    "G2": (45_000, 65_000),
    "G3": (65_000, 90_000),
    "G4": (90_000, 130_000),
    "G5": (130_000, 180_000),
}


def first_name_gender_oracle() -> dict[str, str]:
    """The ground-truth first-name -> gender mapping (validation oracle)."""
    mapping = {name: "M" for name in MALE_FIRST_NAMES}
    mapping.update({name: "F" for name in FEMALE_FIRST_NAMES})
    return mapping


def zip_prefix_city_oracle() -> dict[str, str]:
    """Zip prefix (3 digits) -> city."""
    return {prefix: city for prefix, (city, _state) in ZIP_PREFIXES.items()}


def zip_prefix_state_oracle() -> dict[str, str]:
    """Zip prefix (3 digits) -> state."""
    return {prefix: state for prefix, (_city, state) in ZIP_PREFIXES.items()}


def area_code_state_oracle() -> dict[str, str]:
    """Telephone / fax area code -> state."""
    return dict(AREA_CODES)
