"""Synthetic dataset generators with ground truth, replacing the paper's
proprietary GOV / ChEMBL / UDW tables (see DESIGN.md for the substitution
rationale)."""

from . import pools
from .generators import (
    GeneratedTable,
    build_che_activities,
    build_che_assays,
    build_che_compounds,
    build_che_docs,
    build_che_targets,
    build_gov_addresses,
    build_gov_contacts,
    build_gov_employees,
    build_gov_facilities,
    build_gov_grants,
    build_name_gender_table,
    build_udw_alumni,
    build_udw_courses,
    build_udw_payroll,
    build_udw_staff,
    build_udw_students,
    build_zip_state_table,
    dependency,
)
from .suite import TABLE_IDS, benchmark_suite, build_table, materialize_suite

__all__ = [
    "pools",
    "GeneratedTable",
    "build_che_activities",
    "build_che_assays",
    "build_che_compounds",
    "build_che_docs",
    "build_che_targets",
    "build_gov_addresses",
    "build_gov_contacts",
    "build_gov_employees",
    "build_gov_facilities",
    "build_gov_grants",
    "build_name_gender_table",
    "build_udw_alumni",
    "build_udw_courses",
    "build_udw_payroll",
    "build_udw_staff",
    "build_udw_students",
    "build_zip_state_table",
    "dependency",
    "TABLE_IDS",
    "benchmark_suite",
    "build_table",
    "materialize_suite",
]
